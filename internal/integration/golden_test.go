package integration

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/ethersim"
	"repro/internal/faults"
	"repro/internal/filter"
	"repro/internal/parsim"
	"repro/internal/pfdev"
	"repro/internal/shm"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vtime"
	"repro/internal/workload"
)

// The golden-trace corpus: a grid of (config, seed) universes whose
// complete observable behavior — every trace event, the final metrics
// snapshot and the final virtual clock — is pinned as a SHA-256 hash.
// Any change that shifts an event, a counter or a tick anywhere in
// sim/ethersim/pfdev/shm/faults moves a hash and fails here; any
// optimization that preserves behavior (event pooling, buffer reuse,
// parallel execution) leaves every hash untouched.

// goldenCfg is one delivery configuration of the corpus.
type goldenCfg struct {
	name      string
	coalesce  bool // interrupt coalescing, budget 4 / 2 mSec
	ring      bool // drain through a mapped shm ring
	faults    bool // 20% seeded wire chaos
	gov       bool // resource governor enabled
	hostile   bool // burn filter bound ahead of the receiver; odd frames miss
	admission bool // tight watermarks and a dawdling reader
	table     bool // EvalTable: merged decision table instead of linear scan
	churn     bool // ports open/close/rebind while traffic flows
	queues    int  // RSS receive queues (0/1 = classic single-queue)
}

func goldenConfigs() []goldenCfg {
	return []goldenCfg{
		{name: "plain"},
		{name: "coalesce", coalesce: true},
		{name: "ring", ring: true},
		{name: "faults", faults: true},
		{name: "all", coalesce: true, ring: true, faults: true},
		// The governance cells pin the defensive kernel: "quota" runs a
		// max-length burn filter into quarantine so misses die as
		// DropQuota, "admission" starves the reader under tight
		// watermarks so the overload controller sheds DropAdmission.
		{name: "quota", gov: true, hostile: true},
		{name: "admission", gov: true, admission: true},
		// The churn cell pins the v2 incrementally maintained decision
		// table: copy-all monitors and decoy ports open, rebind and
		// close while frames flow, with busy-first reordering on, so
		// the patched-table match trajectory (edge attribution, tie
		// order, port-close/queue drops) is bit-identical at any
		// parsim worker count.
		{name: "churn", table: true, churn: true},
		// The multi-queue cell pins RSS-style parallel demux: frames
		// from sources chosen to cover every receive queue are steered
		// onto four kernel lanes, all matching against one shared
		// decision-table snapshot, so the pinned hash covers steering,
		// per-queue NAPI state and cross-queue delivery charges — and
		// must stay bit-identical at any parsim worker count.
		{name: "mq", table: true, queues: 4},
	}
}

// goldenFrame builds a Pup frame to the given socket from the given
// link-level source (which is what the steering hash keys on),
// carrying seq and rng-derived filler.
func goldenFrame(rng *rand.Rand, seq int, socket byte, src ethersim.Addr) []byte {
	size := 22 + rng.Intn(160)
	payload := make([]byte, size)
	payload[3] = byte(seq)
	payload[13] = socket
	for i := 22; i < size; i++ {
		payload[i] = byte(rng.Intn(256))
	}
	return ethersim.Ether3Mb.Encode(2, src, ethersim.EtherTypePup3Mb, payload)
}

// goldenSrcs picks one link-level source per receive queue (searching
// from address 10 upward), so the multi-queue cell provably exercises
// every queue regardless of seed.  Single-queue cells keep the fixed
// source 1 — their frames stay byte-identical to the original corpus.
func goldenSrcs(queues int) []ethersim.Addr {
	if queues <= 1 {
		return []ethersim.Addr{1}
	}
	srcs := make([]ethersim.Addr, 0, queues)
	seen := make(map[int]bool)
	for src := ethersim.Addr(10); len(srcs) < queues; src++ {
		f := ethersim.Ether3Mb.Encode(2, src, ethersim.EtherTypePup3Mb, nil)
		if q := ethersim.Ether3Mb.SteerQueue(f, queues); !seen[q] {
			seen[q] = true
			srcs = append(srcs, src)
		}
	}
	return srcs
}

// goldenRun drives one fully traced universe and digests everything
// observable about it into one hash; the span aggregate, the device's
// incremental-patch count and the per-queue receive counts come back
// too so the governance, churn and multi-queue cells can be checked
// for actually exercising the machinery they pin.
func goldenRun(seed uint64, cfg goldenCfg) (string, *trace.Spans, uint64, []uint64) {
	s := sim.New(vtime.DefaultCosts())
	tr := trace.New()
	rec := &trace.Recorder{}
	tr.SetSink(rec)
	sp := tr.EnableSpans(trace.SpanConfig{Ring: 512})
	s.SetTracer(tr)

	net := ethersim.New(s, ethersim.Ether3Mb)
	ha, hb := s.NewHost("a"), s.NewHost("b")
	na, nb := net.Attach(ha, 1), net.Attach(hb, 2)
	opt := pfdev.Options{}
	if cfg.coalesce {
		opt.CoalesceBudget = 4
		opt.CoalesceDelay = 2 * time.Millisecond
	}
	if cfg.gov {
		opt.Gov = pfdev.GovConfig{
			Enabled:        true,
			Rate:           20000,
			Burst:          300,
			QuarantineBase: 10 * time.Millisecond,
			QuarantineMax:  80 * time.Millisecond,
			QuarantineCool: 50 * time.Millisecond,
			AdmissionHigh:  100000,
			AdmissionLow:   1000,
		}
		if cfg.admission {
			// Quarantine effectively off; the controller is the story.
			opt.Gov.Rate, opt.Gov.Burst = 1e9, 1<<30
			opt.Gov.AdmissionHigh, opt.Gov.AdmissionLow = 6, 2
		}
	}
	if cfg.table {
		opt.Mode = pfdev.EvalTable
	}
	if cfg.churn {
		opt.Reorder = true
		opt.ReorderEvery = 4
	}
	if cfg.queues > 1 {
		opt.Queues = cfg.queues
	}
	da := pfdev.Attach(na, nil, pfdev.Options{})
	db := pfdev.Attach(nb, nil, opt)
	if cfg.faults {
		eng := faults.New(s, seed, faults.Plan{Name: "golden", Wire: faults.Uniform(0.20)})
		eng.AttachWire(net)
	}

	n := 12 + int(seed%5)
	s.Spawn(hb, "recv", func(p *sim.Proc) {
		port := db.Open(p)
		port.SetFilter(p, filter.DstSocketFilter(10, 35))
		port.SetQueueLimit(p, 4*n)
		port.SetTimeout(p, 10*time.Millisecond)
		if cfg.hostile {
			burn := db.Open(p)
			if err := burn.SetFilter(p, filter.Filter{
				Priority: 20, Program: workload.BurnProgram(),
			}); err != nil {
				panic(err)
			}
		}
		if cfg.ring {
			reg := shm.NewRegistry(hb)
			seg, err := reg.Map(p, "golden", port.RingLayoutSize(2*n))
			if err != nil {
				panic(err)
			}
			if err := port.MapRing(p, seg, 2*n); err != nil {
				panic(err)
			}
		}
		idle := 0
		for idle < 2 {
			var err error
			if cfg.ring {
				_, err = port.ReapBatch(p)
			} else {
				_, err = port.Read(p)
			}
			if err != nil {
				idle++
			} else {
				idle = 0
				if cfg.admission {
					// Dawdle so the backlog climbs through the high
					// watermark and the controller has to shed.
					p.Sleep(3 * time.Millisecond)
				}
			}
		}
	})
	if cfg.churn {
		// Open, rebind and close monitor/decoy ports while traffic
		// flows: every SetFilter and Close patches the published
		// decision table in place, so the pinned hash covers the
		// incremental Insert/Remove path and the atomic-swap scan.
		s.Spawn(hb, "churn", func(p *sim.Proc) {
			rng := rand.New(rand.NewSource(int64(seed) + 0x6368))
			var open []*pfdev.Port
			for i := 0; i < 24; i++ {
				p.Sleep(time.Duration(300+rng.Intn(600)) * time.Microsecond)
				if len(open) < 2 || rng.Intn(3) != 0 {
					q := db.Open(p)
					if rng.Intn(2) == 0 {
						// Copy-all monitor above the receiver: every
						// socket-35 frame is mirrored into its (never
						// drained) queue until it overflows or closes.
						q.SetFilter(p, filter.DstSocketFilter(15, 35))
						q.SetCopyAll(p, true)
					} else {
						// Decoy on an idle socket: reshapes the tree
						// without ever firing.
						q.SetFilter(p, filter.DstSocketFilter(
							uint8(3+rng.Intn(4)), uint32(40+rng.Intn(6))))
					}
					open = append(open, q)
				} else {
					k := rng.Intn(len(open))
					open[k].Close(p)
					open = append(open[:k], open[k+1:]...)
				}
			}
			for _, q := range open {
				q.Close(p)
			}
		})
	}
	srcs := goldenSrcs(cfg.queues)
	s.Spawn(ha, "send", func(p *sim.Proc) {
		rng := rand.New(rand.NewSource(int64(seed)))
		port := da.Open(p)
		p.Sleep(2 * time.Millisecond)
		for i := 0; i < n; i++ {
			socket := byte(35)
			if cfg.hostile && i%2 == 1 {
				// Odd frames miss every filter: once the burn port is
				// quarantined they die as DropQuota, not DropNoMatch.
				socket = 99
			}
			if err := port.Write(p, goldenFrame(rng, i, socket, srcs[i%len(srcs)])); err != nil {
				panic(err)
			}
			p.Sleep(time.Duration(100+rng.Intn(1200)) * time.Microsecond)
		}
	})
	end := s.Run(0)

	h := sha256.New()
	for _, e := range rec.Events {
		fmt.Fprintf(h, "%d %d %s %s %s %d %d %d\n",
			e.When, e.Kind, e.Host, e.Proc, e.Tag, e.Port, e.Value, e.Aux)
	}
	snap, err := tr.Snapshot().JSON()
	if err != nil {
		panic(err)
	}
	h.Write(snap)
	// The provenance stream is observable behavior too: every span
	// record, stage mark and taxonomy counter is folded into the pin,
	// so a shifted mark or a recounted drop moves the hash exactly like
	// a shifted trace event would.
	fmt.Fprintf(h, "spans %s\n", spanSignature(sp))
	fmt.Fprintf(h, "end %d\n", end)
	return hex.EncodeToString(h.Sum(nil)), sp, db.TablePatches, nb.QueueRx()
}

// goldenHashes pins the corpus.  When an intentional behavior change
// moves a trace, the failure message prints the new hash — re-pin it
// here only after confirming the shift is intended.
var goldenHashes = map[string]string{
	// Re-pinned when the drop taxonomy grew DropQuota and DropAdmission:
	// spanSignature folds the whole per-reason counter array into the
	// digest, so two new (zero) columns moved every hash.  Events,
	// counters and the final clock were verified unchanged.
	"plain/1":     "0c92fc02fce7ffd97bce6cf9764739729c8ccb572933da7ade0200b8e7708bc0",
	"plain/2":     "5a2c991bc8ae24ade84efec6e2bb598df6270803dc045e04e8c498940f312eea",
	"coalesce/1":  "038a900cf4531d37f7d83518ad09551e1475ebeb6db8d1d2c6c10c2a18058c91",
	"coalesce/2":  "e91f6669fecf6ea14ef3349900db623e4b52f8a2f3902407aaced3e577875fb8",
	"ring/1":      "0d933a826d359481c7c29be16cb01b6982af46ec29385065702691854f0252e4",
	"ring/2":      "11b32c8e874609f36f7f9cb4cc61e91989aed2bc9b1d8512c612c5a0bcf9388e",
	"faults/1":    "650b3dc614d1d2a9a412d4ca69d4dd6375616c5fbaa567cb12e7f32e35eb0932",
	"faults/2":    "0052cc886cb06d3fef6032733c337a6bcd478c2262af12a5a4b46353cb636861",
	"all/1":       "2dcbc57c7cf4f952dd6a465bb3f746767a3fb95ca72e0dca143cf6301931a4ba",
	"all/2":       "2e0e06b4f6fa9dc64daab070a3a09fb31e790e11106f4643928af9c6b670d906",
	"quota/1":     "eca6967646b6ebd4408f1fd86861965a1a7916937db268a1612ebf3ec75fc7ed",
	"quota/2":     "d33c76019b156a0b0349db9175d0636333a89c39dc53b399201d00a82474c512",
	"admission/1": "654f43d376570511265169719b37388e5c447fa880b5e64a69ff0a77df7e7e48",
	"admission/2": "a963d000cb0b0123dd2efb8e8cc8635bd41ff18fa285f227429f2ea27b46ec55",
	// Pinned with the v2 incrementally maintained decision table: the
	// churn cell runs EvalTable under open/rebind/close port churn with
	// busy-first reordering on.
	"churn/1": "ae25237a8c3ba5360cc322a728cad062af21808ec29d5224b825ceb9c9ce7062",
	"churn/2": "f98bd7a052597be804546b8b839bba0f6eeed3078f9895107ea13d5915ff208e",
	// Pinned with RSS-style multi-queue receive: the mq cell steers
	// four flows onto four parallel demux lanes sharing one decision
	// table, covering steering, per-queue NAPI state and cross-queue
	// delivery charges.
	"mq/1": "18ba5bee8b34e9269bdca40869b52835f1ff87a5488443015f7a5673bc422efa",
	"mq/2": "cab39326d31dee0958f1ddcf6e84e9c88e795d1ffb38ce99de8b3c64a097562b",
}

// goldenCells enumerates the corpus in deterministic order.
func goldenCells() (keys []string, cfgs []goldenCfg, seeds []uint64) {
	for _, cfg := range goldenConfigs() {
		for _, seed := range []uint64{1, 2} {
			keys = append(keys, fmt.Sprintf("%s/%d", cfg.name, seed))
			cfgs = append(cfgs, cfg)
			seeds = append(seeds, seed)
		}
	}
	return
}

// TestGoldenTraceCorpus checks every cell against its pinned hash —
// run both sequentially and across the parsim pool, so the worker pool
// itself is pinned to have no observable effect.
func TestGoldenTraceCorpus(t *testing.T) {
	keys, cfgs, seeds := goldenCells()
	for _, workers := range []int{1, 4} {
		got := parsim.Map(len(keys), workers, func(i int) string {
			h, _, _, _ := goldenRun(seeds[i], cfgs[i])
			return h
		})
		for i, key := range keys {
			want := goldenHashes[key]
			if want == "" {
				t.Errorf("workers=%d: %s: no pinned hash; got %s", workers, key, got[i])
				continue
			}
			if got[i] != want {
				t.Errorf("workers=%d: %s: trace hash %s, want %s", workers, key, got[i], want)
			}
		}
	}
}

// TestGoldenGovCellsExerciseTaxonomy guards the governance cells
// against silently going stale: their pins are only meaningful while
// the quota cell really produces DropQuota and the admission cell
// really sheds DropAdmission — and both must conserve exactly.
func TestGoldenGovCellsExerciseTaxonomy(t *testing.T) {
	keys, cfgs, seeds := goldenCells()
	for i, key := range keys {
		var want trace.DropReason
		switch cfgs[i].name {
		case "quota":
			want = trace.DropQuota
		case "admission":
			want = trace.DropAdmission
		default:
			continue
		}
		_, sp, _, _ := goldenRun(seeds[i], cfgs[i])
		if sp.Drops[want] == 0 {
			t.Errorf("%s: cell produced no %v drops; the pin proves nothing", key, want)
		}
		if got, acc := sp.Created, sp.DeliveredUser+sp.DeliveredKernel+sp.TotalDrops()+sp.Live(); got != acc {
			t.Errorf("%s: conservation broken: created=%d accounted=%d", key, got, acc)
		}
	}
}

// TestGoldenMultiQueueCellUsesQueues guards the multi-queue cell
// against silently going stale: its pin is only meaningful while the
// traffic really spreads across the receive queues — at least 3 of
// the 4 must carry frames — and the parallel lanes must conserve
// every span exactly.
func TestGoldenMultiQueueCellUsesQueues(t *testing.T) {
	keys, cfgs, seeds := goldenCells()
	for i, key := range keys {
		if cfgs[i].queues <= 1 {
			continue
		}
		_, sp, _, qrx := goldenRun(seeds[i], cfgs[i])
		if len(qrx) != cfgs[i].queues {
			t.Fatalf("%s: %d per-queue rx counters, want %d", key, len(qrx), cfgs[i].queues)
		}
		busy := 0
		for _, n := range qrx {
			if n > 0 {
				busy++
			}
		}
		if busy < 3 {
			t.Errorf("%s: only %d of %d queues carried frames (%v); the pin proves nothing",
				key, busy, cfgs[i].queues, qrx)
		}
		if got, acc := sp.Created, sp.DeliveredUser+sp.DeliveredKernel+sp.TotalDrops()+sp.Live(); got != acc {
			t.Errorf("%s: conservation broken: created=%d accounted=%d", key, got, acc)
		}
	}
}

// TestGoldenChurnCellExercisesPatching guards the churn cell the same
// way: its pin is only meaningful while the cell really drives the
// incremental table-maintenance path, so the device must report a
// healthy number of in-place patches (not silent full rebuilds).
func TestGoldenChurnCellExercisesPatching(t *testing.T) {
	keys, cfgs, seeds := goldenCells()
	for i, key := range keys {
		if !cfgs[i].churn {
			continue
		}
		_, sp, patches, _ := goldenRun(seeds[i], cfgs[i])
		if patches < 10 {
			t.Errorf("%s: only %d incremental table patches; the pin proves nothing", key, patches)
		}
		if got, acc := sp.Created, sp.DeliveredUser+sp.DeliveredKernel+sp.TotalDrops()+sp.Live(); got != acc {
			t.Errorf("%s: conservation broken: created=%d accounted=%d", key, got, acc)
		}
	}
}
