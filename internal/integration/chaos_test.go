package integration

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/ethersim"
	"repro/internal/faults"
	"repro/internal/parsim"
	"repro/internal/pfdev"
	"repro/internal/pup"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vmtp"
	"repro/internal/vtime"
)

// The chaos soak: BSP, EFTP and user-level VMTP all running over a
// wire that drops, corrupts, duplicates and delays frames at up to a
// 30% combined rate.  The invariants under test are the ones ISSUE's
// fault model demands:
//
//   - exactly-once, in-order delivery of every byte through each
//     protocol's own retransmission, duplicate-suppression and
//     checksum machinery (corruption must be *caught*, never slip
//     through);
//   - bit-identical reruns: the same (seed, rate) cell produces the
//     same trace event stream and the same metric snapshot every time.

// chaosResult captures one soak cell.
type chaosResult struct {
	bspOK, eftpOK, vmtpOK bool
	bspDuplicates         int
	ledger                faults.Ledger
	end                   time.Duration
	events                []trace.Event
	snap                  []byte
	spans                 *trace.Spans
	spanSig               string
}

// runChaosCell runs the three checksummed protocols concurrently over
// one faulted wire and records the full trace.
func runChaosCell(t *testing.T, seed uint64, rate float64) chaosResult {
	t.Helper()
	s := sim.New(vtime.DefaultCosts())
	tr := trace.New()
	rec := &trace.Recorder{}
	tr.SetSink(rec)
	// Sampling 1 with a ring sized above any cell's frame count, so the
	// taxonomy reconciles against the faults ledger exactly and no live
	// span is ever evicted.
	sp := tr.EnableSpans(trace.SpanConfig{Ring: 1 << 14})
	s.SetTracer(tr)

	net := ethersim.New(s, ethersim.Ether10Mb)
	alpha, beta := s.NewHost("alpha"), s.NewHost("beta")
	nicA, nicB := net.Attach(alpha, 0xA1), net.Attach(beta, 0xB2)
	devA := pfdev.Attach(nicA, nil, pfdev.Options{})
	devB := pfdev.Attach(nicB, nil, pfdev.Options{})

	eng := faults.New(s, seed, faults.Plan{Name: "soak", Wire: faults.Uniform(rate)})
	eng.AttachWire(net)

	bspData := bytes.Repeat([]byte("soak bsp "), 450)   // ~4 KB beta -> alpha
	eftpData := bytes.Repeat([]byte("soak eftp "), 300) // ~3 KB alpha -> beta
	vmtpReq := bytes.Repeat([]byte{0xC3}, 512)

	var res chaosResult

	// --- BSP: beta -> alpha, checksummed --------------------------
	bspAddr := pup.PortAddr{Net: 1, Host: 0xA1, Socket: 0x500}
	var bspRcv *pup.BSPReceiver
	s.Spawn(alpha, "bsp-recv", func(p *sim.Proc) {
		sock, err := pup.Open(p, devA, bspAddr, 10)
		if err != nil {
			t.Error(err)
			return
		}
		sock.Checksummed = true
		bspRcv = pup.NewBSPReceiver(sock, pup.DefaultBSPConfig())
		var got bytes.Buffer
		for {
			seg, err := bspRcv.Receive(p, 3*time.Second)
			if err != nil {
				break
			}
			got.Write(seg)
		}
		res.bspOK = bytes.Equal(got.Bytes(), bspData)
	})
	s.Spawn(beta, "bsp-send", func(p *sim.Proc) {
		sock, err := pup.Open(p, devB, pup.PortAddr{Net: 1, Host: 0xB2, Socket: 0x501}, 10)
		if err != nil {
			t.Error(err)
			return
		}
		sock.Checksummed = true
		p.Sleep(2 * time.Millisecond)
		snd := pup.NewBSPSender(sock, bspAddr, pup.DefaultBSPConfig())
		if err := snd.Send(p, bspData); err != nil {
			t.Errorf("bsp send (seed %d rate %.2f): %v", seed, rate, err)
			return
		}
		snd.Close(p)
	})

	// --- EFTP: alpha -> beta, checksummed -------------------------
	eftpAddr := pup.PortAddr{Net: 1, Host: 0xB2, Socket: 0x600}
	eftpCfg := pup.DefaultEFTPConfig()
	eftpCfg.Retries = 16 // survive 30% combined faults
	s.Spawn(beta, "eftp-recv", func(p *sim.Proc) {
		sock, err := pup.Open(p, devB, eftpAddr, 10)
		if err != nil {
			t.Error(err)
			return
		}
		sock.Checksummed = true
		got, err := pup.EFTPReceive(p, sock, 3*time.Second, eftpCfg)
		res.eftpOK = err == nil && bytes.Equal(got, eftpData)
	})
	s.Spawn(alpha, "eftp-send", func(p *sim.Proc) {
		sock, err := pup.Open(p, devA, pup.PortAddr{Net: 1, Host: 0xA1, Socket: 0x601}, 10)
		if err != nil {
			t.Error(err)
			return
		}
		sock.Checksummed = true
		p.Sleep(3 * time.Millisecond)
		if _, err := pup.EFTPSend(p, sock, eftpAddr, eftpData, eftpCfg); err != nil {
			t.Errorf("eftp send (seed %d rate %.2f): %v", seed, rate, err)
		}
	})

	// --- User-level VMTP: alpha calls beta, checksummed -----------
	vcfg := vmtp.DefaultUserConfig()
	vcfg.Checksummed = true
	s.Spawn(beta, "uvmtpd", func(p *sim.Proc) {
		ep, err := vmtp.NewUserEndpoint(p, devB, 800, vcfg)
		if err != nil {
			t.Error(err)
			return
		}
		ep.Serve(p, func(op uint16, req []byte) []byte { return req }, 3*time.Second)
	})
	s.Spawn(alpha, "uvmtp-client", func(p *sim.Proc) {
		ep, err := vmtp.NewUserEndpoint(p, devA, 801, vcfg)
		if err != nil {
			t.Error(err)
			return
		}
		p.Sleep(4 * time.Millisecond)
		ok := true
		for i := 0; i < 5; i++ {
			resp, err := ep.Call(p, nicB.Addr(), 800, uint16(i), vmtpReq)
			if err != nil || !bytes.Equal(resp, vmtpReq) {
				t.Errorf("vmtp call %d (seed %d rate %.2f): %v", i, seed, rate, err)
				ok = false
				break
			}
		}
		res.vmtpOK = ok
	})

	res.end = s.Run(60 * time.Second)
	res.ledger = eng.Ledger
	if bspRcv != nil {
		res.bspDuplicates = bspRcv.Duplicates
	}
	res.events = rec.Events
	res.spans = sp
	res.spanSig = spanSignature(sp)
	raw, err := tr.Snapshot().JSON()
	if err != nil {
		// Error, not Fatal: cells may run on parsim worker goroutines,
		// where FailNow is illegal.
		t.Error(err)
		return res
	}
	res.snap = raw
	return res
}

// chaosCell names one soak grid cell.
type chaosCell struct {
	seed uint64
	rate float64
}

func chaosGrid() []chaosCell {
	var cells []chaosCell
	for _, seed := range []uint64{1, 2, 3} {
		for _, rate := range []float64{0, 0.10, 0.20, 0.30} {
			cells = append(cells, chaosCell{seed, rate})
		}
	}
	return cells
}

// TestChaosSoak runs the seeds × fault-rates grid and checks both
// invariants in every cell.  The cells are independent simulation
// universes, so they run on the parsim worker pool; every Fatal-grade
// assertion happens back on the test goroutine, over results collected
// in deterministic trial order.
func TestChaosSoak(t *testing.T) {
	cells := chaosGrid()
	type pair struct{ a, b chaosResult }
	// Each trial runs its cell twice: the second run is the
	// bit-identical rerun the determinism invariant compares against.
	results := parsim.Map(len(cells), 0, func(i int) pair {
		return pair{
			a: runChaosCell(t, cells[i].seed, cells[i].rate),
			b: runChaosCell(t, cells[i].seed, cells[i].rate),
		}
	})
	for i, cell := range cells {
		seed, rate := cell.seed, cell.rate
		a, b := results[i].a, results[i].b
		t.Run(fmt.Sprintf("seed=%d/rate=%.0f%%", seed, rate*100), func(t *testing.T) {
			if !a.bspOK {
				t.Error("bsp stream not delivered exactly-once in-order")
			}
			if !a.eftpOK {
				t.Error("eftp file not delivered exactly-once in-order")
			}
			if !a.vmtpOK {
				t.Error("vmtp transactions failed")
			}
			if rate > 0 && a.ledger.Total() == 0 {
				t.Errorf("no faults injected at rate %.2f", rate)
			}
			if rate == 0 && a.ledger.Total() != 0 {
				t.Errorf("faults injected at rate 0: %s", a.ledger.String())
			}

			// Bit-identical rerun: same seed, same plan, same
			// everything — events and metric snapshots included.
			if a.end != b.end {
				t.Fatalf("end times differ: %v vs %v", a.end, b.end)
			}
			if a.ledger != b.ledger {
				t.Fatalf("ledgers differ:\n  %s\n  %s", a.ledger.String(), b.ledger.String())
			}
			if len(a.events) != len(b.events) {
				t.Fatalf("event counts differ: %d vs %d", len(a.events), len(b.events))
			}
			for i := range a.events {
				if a.events[i] != b.events[i] {
					t.Fatalf("event %d differs:\n  %+v\n  %+v", i, a.events[i], b.events[i])
				}
			}
			if !bytes.Equal(a.snap, b.snap) {
				t.Fatal("metric snapshots differ between identical runs")
			}
			if a.spanSig != b.spanSig {
				t.Fatal("span streams differ between identical runs")
			}
		})
	}
}

// TestChaosDuplicateSuppression pins that a dup-heavy wire exercises
// the receiver's duplicate suppression (the exactly-once half that a
// pure drop schedule never tests).
func TestChaosDuplicateSuppression(t *testing.T) {
	res := runChaosCell(t, 11, 0.30)
	if !res.bspOK {
		t.Fatal("bsp failed under 30% faults")
	}
	if res.ledger.Dups == 0 {
		t.Fatal("plan injected no duplicates")
	}
	if res.bspDuplicates == 0 {
		t.Error("receiver suppressed no duplicates despite injected dups/retransmits")
	}
}

// TestChaosCrashRecovery crashes hosts mid-run and requires the
// services on them to recover: the echo server re-binds its filter
// after its own kernel reboots, and the gateway re-opens its transit
// ports so cross-net traffic flows again.
func TestChaosCrashRecovery(t *testing.T) {
	s := sim.New(vtime.DefaultCosts())
	tr := trace.New()
	s.SetTracer(tr)

	net1 := ethersim.New(s, ethersim.Ether10Mb)
	net2 := ethersim.New(s, ethersim.Ether10Mb)
	ha, hb, hgw := s.NewHost("a"), s.NewHost("b"), s.NewHost("gw")
	da := pfdev.Attach(net1.Attach(ha, 0x0A), nil, pfdev.Options{})
	db := pfdev.Attach(net2.Attach(hb, 0x0B), nil, pfdev.Options{})
	dg1 := pfdev.Attach(net1.Attach(hgw, 0x7E), nil, pfdev.Options{})
	dg2 := pfdev.Attach(net2.Attach(hgw, 0x7F), nil, pfdev.Options{})
	gw := pup.NewGateway(
		pup.GatewayPort{Dev: dg1, Net: 1},
		pup.GatewayPort{Dev: dg2, Net: 2},
	)
	s.Spawn(hgw, "gateway", func(p *sim.Proc) { gw.Run(p, 2*time.Second) })

	// Crash the gateway mid-transfer and the echo server's host too.
	plan := faults.Plan{
		Name: "crash-recovery",
		Hosts: []faults.HostEvent{
			{Host: "gw", At: 30 * time.Millisecond, Kind: faults.Crash, Outage: 20 * time.Millisecond},
			{Host: "b", At: 90 * time.Millisecond, Kind: faults.Crash, Outage: 20 * time.Millisecond},
		},
	}
	eng := faults.New(s, 1, plan)
	eng.AttachHost(hgw)
	eng.AttachHost(hb)

	addrA := pup.PortAddr{Net: 1, Host: 0x0A, Socket: 0x100}
	addrB := pup.PortAddr{Net: 2, Host: 0x0B, Socket: 0x200}

	var echoSock *pup.Socket
	s.Spawn(hb, "echod", func(p *sim.Proc) {
		sock, err := pup.Open(p, db, addrB, 10)
		if err != nil {
			t.Error(err)
			return
		}
		sock.Gateway = 0x7F
		echoSock = sock
		sock.EchoServer(p, 2*time.Second)
	})

	// A BSP stream through the gateway spans both crashes.
	bspData := bytes.Repeat([]byte("across the gap "), 300) // ~4.5 KB
	bspOK := false
	s.Spawn(hb, "bsp-recv", func(p *sim.Proc) {
		sock, err := pup.Open(p, db, pup.PortAddr{Net: 2, Host: 0x0B, Socket: 0x300}, 10)
		if err != nil {
			t.Error(err)
			return
		}
		sock.Gateway = 0x7F
		rcv := pup.NewBSPReceiver(sock, pup.DefaultBSPConfig())
		var got bytes.Buffer
		for {
			seg, err := rcv.Receive(p, 3*time.Second)
			if err == pfdev.ErrClosed {
				// Our own host crashed: re-bind and keep receiving
				// (the sender retransmits what the reboot lost).
				if sock.Reopen(p) != nil {
					break
				}
				continue
			}
			if err != nil {
				break
			}
			got.Write(seg)
		}
		bspOK = bytes.Equal(got.Bytes(), bspData)
	})
	s.Spawn(ha, "bsp-send", func(p *sim.Proc) {
		sock, err := pup.Open(p, da, addrA, 10)
		if err != nil {
			t.Error(err)
			return
		}
		sock.Gateway = 0x7E
		p.Sleep(5 * time.Millisecond)
		snd := pup.NewBSPSender(sock, pup.PortAddr{Net: 2, Host: 0x0B, Socket: 0x300}, pup.DefaultBSPConfig())
		if err := snd.Send(p, bspData); err != nil {
			t.Errorf("bsp through crashed gateway: %v", err)
			return
		}
		snd.Close(p)
	})

	// An echo after the second crash proves the server re-bound.
	var rtt time.Duration
	var echoErr error
	s.Spawn(ha, "pinger", func(p *sim.Proc) {
		sock, err := pup.Open(p, da, pup.PortAddr{Net: 1, Host: 0x0A, Socket: 0x101}, 10)
		if err != nil {
			t.Error(err)
			return
		}
		sock.Gateway = 0x7E
		p.Sleep(150 * time.Millisecond) // after the echo host's reboot
		rtt, echoErr = sock.Echo(p, addrB, []byte("back?"), 100*time.Millisecond, 8)
	})

	s.Run(30 * time.Second)

	if !bspOK {
		t.Error("bsp stream did not survive the crashes")
	}
	if echoErr != nil {
		t.Errorf("echo after reboot failed: %v", echoErr)
	} else if rtt <= 0 {
		t.Error("no echo round trip after reboot")
	}
	if gw.Recoveries == 0 {
		t.Error("gateway never recovered its route")
	}
	if echoSock == nil || echoSock.Rebinds == 0 {
		t.Error("echo server never re-bound its filter")
	}
	if eng.Ledger.Crashes != 2 || eng.Ledger.Restarts != 2 {
		t.Errorf("crash/restart miscounted: %s", eng.Ledger.String())
	}
}
