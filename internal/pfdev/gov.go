package pfdev

// Resource governance: the defensive layer that keeps a hostile (or
// merely buggy) port from monopolizing the kernel.  §6.1 measures 41%
// of packet-filter receive time going to predicate evaluation, and the
// language's only built-in defense is the program-length cap — a port
// binding a maximum-length filter still charges the kernel
// MaxProgramLen instruction units for every packet on the wire, paid
// by every other user of the interface.  The governor closes that hole
// with three cooperating mechanisms, all in virtual time and all
// strictly opt-in (the zero Options leave every path byte-identical):
//
//   - Per-port CPU token buckets.  Each port accrues instruction units
//     at GovConfig.Rate up to Burst; a filter evaluation is admitted
//     only when the bucket covers the program's static worst case
//     (filter.Info.WorstInstrs, scaled per evaluation mode) and is
//     charged its actual cost afterwards.  Well-behaved filters never
//     notice; a MaxInstrsProgram drains its bucket within a few
//     packets.
//
//   - Quarantine.  An over-budget port's filter is skipped entirely —
//     no FilterApply setup, no instruction charges — for a penalty
//     window that doubles on prompt re-offense up to QuarantineMax and
//     resets to QuarantineBase after QuarantineCool of good standing.
//     A packet that then matches no port is accounted DropQuota, not
//     DropNoMatch: the governor, not the filter set, decided its fate.
//
//   - Admission control.  When the kernel-wide backlog (queued packets
//     plus matched frames awaiting their "pf" charge) crosses
//     AdmissionHigh, new frames are shed at demux entry — before any
//     filter cost is paid — as DropAdmission, until the backlog drains
//     to AdmissionLow (classic high/low watermark hysteresis, so the
//     controller does not flap at the boundary).
//
// Every governed drop is a typed span termination, so the PR-6
// conservation property (created == delivered + drops + live) holds
// exactly with governance enabled.

import (
	"time"

	"repro/internal/filter"
	"repro/internal/sim"
	"repro/internal/trace"
)

// GovConfig configures the device's resource governor.  The zero value
// disables it entirely.
type GovConfig struct {
	// Enabled turns the governor on.  All other fields are defaulted
	// from DefaultGovConfig when left zero.
	Enabled bool
	// Rate is the token refill rate in instruction units per virtual
	// second.  One unit is one checked-interpreter step (the same unit
	// eval() charges, so the faster §7 strategies cost proportionally
	// less fuel too).
	Rate float64
	// Burst is the bucket capacity in instruction units.
	Burst int
	// QuarantineBase is the first penalty window; QuarantineMax caps
	// the doubling backoff; QuarantineCool is how long a port must
	// stay out of trouble before its penalty resets to the base.
	QuarantineBase time.Duration
	QuarantineMax  time.Duration
	QuarantineCool time.Duration
	// AdmissionHigh and AdmissionLow are the backlog watermarks (in
	// packets: queued on ports plus pending delivery) at which input
	// shedding starts and stops.
	AdmissionHigh int
	AdmissionLow  int
}

// DefaultGovConfig returns the enabled governor with its default
// calibration.  The numbers are sized against the virtual cost model
// (FilterInstr = 28µs, so one virtual CPU sustains ~35.7k instruction
// units per second): Rate lets a port use a generous minority share of
// the filter budget, Burst keeps an over-budget port's post-quarantine
// relapse to a couple of evaluations, and the watermarks sit below the
// point where the pending queue's latency would dwarf per-packet cost.
func DefaultGovConfig() GovConfig {
	return GovConfig{
		Enabled:        true,
		Rate:           20000,
		Burst:          256,
		QuarantineBase: 50 * time.Millisecond,
		QuarantineMax:  time.Second,
		QuarantineCool: 400 * time.Millisecond,
		AdmissionHigh:  192,
		AdmissionLow:   64,
	}
}

// WithDefaults returns the config with zero fields filled from the
// default calibration; a disabled config is returned unchanged.  The
// live-mode device (package live) runs the same governor on wall time
// and shares this calibration.
func (g GovConfig) WithDefaults() GovConfig {
	if !g.Enabled {
		return g
	}
	return g.withDefaults()
}

// withDefaults fills zero fields of an enabled config.
func (g GovConfig) withDefaults() GovConfig {
	def := DefaultGovConfig()
	if g.Rate <= 0 {
		g.Rate = def.Rate
	}
	if g.Burst <= 0 {
		g.Burst = def.Burst
	}
	if g.QuarantineBase <= 0 {
		g.QuarantineBase = def.QuarantineBase
	}
	if g.QuarantineMax < g.QuarantineBase {
		g.QuarantineMax = def.QuarantineMax
	}
	if g.QuarantineCool <= 0 {
		g.QuarantineCool = def.QuarantineCool
	}
	if g.AdmissionHigh <= 0 {
		g.AdmissionHigh = def.AdmissionHigh
	}
	if g.AdmissionLow <= 0 || g.AdmissionLow >= g.AdmissionHigh {
		g.AdmissionLow = g.AdmissionHigh / 3
	}
	return g
}

// GovBound computes a filter's pre-admission price for the given
// evaluation mode — the bucket balance a port must hold before its
// filter may run.  Exported so the live-mode device prices filters
// identically to the simulated one.
func GovBound(mode EvalMode, p filter.Program, opt filter.ValidateOptions) int {
	return govBoundFor(mode, p, opt)
}

// govBoundFor computes a filter's pre-admission price: its static
// worst-case cost in the same scaled units eval() charges for the
// given mode.  A program the checked interpreter would accept despite
// failing validation (EvalChecked binds anything) is priced at its
// full length, a sound upper bound on executed words.
func govBoundFor(mode EvalMode, p filter.Program, opt filter.ValidateOptions) int {
	info, err := filter.Validate(p, opt)
	if err != nil {
		return len(p)
	}
	switch mode {
	case EvalFast:
		return (info.WorstInstrs*3 + 4) / 5
	case EvalCompiled:
		return (info.Instrs + 2) / 3
	default: // EvalChecked, EvalTable
		return info.WorstInstrs
	}
}

// govRefillNow lazily accrues tokens for the elapsed virtual time.
func (port *Port) govRefillNow(now time.Duration, cfg *GovConfig) {
	if now > port.govRefill {
		port.govTokens += cfg.Rate * (now - port.govRefill).Seconds()
		if b := float64(cfg.Burst); port.govTokens > b {
			port.govTokens = b
		}
		port.govRefill = now
	}
}

// govAdmit decides whether this port's filter may run against the
// current frame.  A port in its penalty window, or whose bucket cannot
// cover the filter's worst case (which quarantines it), is skipped.
func (port *Port) govAdmit(now time.Duration, cfg *GovConfig) bool {
	port.govRefillNow(now, cfg)
	if now < port.quarUntil {
		port.quarSkips++
		return false
	}
	if port.govTokens < float64(port.govBound) {
		port.govQuarantine(now, cfg)
		port.quarSkips++
		return false
	}
	return true
}

// govQuarantine starts (or extends) the port's penalty window: prompt
// re-offense after the previous window doubles the penalty, good
// standing for QuarantineCool earns a fresh start at the base.
func (port *Port) govQuarantine(now time.Duration, cfg *GovConfig) {
	if port.quarPenalty == 0 || now-port.quarUntil > cfg.QuarantineCool {
		port.quarPenalty = cfg.QuarantineBase
	} else {
		port.quarPenalty *= 2
		if port.quarPenalty > cfg.QuarantineMax {
			port.quarPenalty = cfg.QuarantineMax
		}
	}
	port.quarUntil = now + port.quarPenalty
	port.quarantines++
}

// govCharge debits an admitted evaluation's actual cost.  In linear
// modes the charge never exceeds the pre-admitted bound; in table mode
// a port's attributed share of a deep shared walk may briefly drive
// the bucket negative, which simply delays its re-admission.
func (port *Port) govCharge(units int) {
	port.govTokens -= float64(units)
	port.fuelSpent += uint64(units)
}

// backlog is the admission controller's load signal: packets queued on
// ports plus matched frames still awaiting their "pf" kernel charge.
// Both terms are maintained O(1) on the hot path.
func (d *Device) backlog() int {
	n := d.queuedTotal
	for _, rx := range d.rx {
		n += len(rx.pend) - rx.pendHead
	}
	return n
}

// admitFrame updates the shed/accept hysteresis and reports whether a
// newly arrived frame may enter the demultiplexer.
func (d *Device) admitFrame() bool {
	g := &d.opt.Gov
	if !g.Enabled {
		return true
	}
	backlog := d.backlog()
	if d.shedding {
		if backlog <= g.AdmissionLow {
			d.shedding = false
		}
	} else if backlog >= g.AdmissionHigh {
		d.shedding = true
	}
	return !d.shedding
}

// shedFrame accounts one frame refused at demux entry.
func (d *Device) shedFrame(span uint64) {
	d.admissionSheds++
	d.KernelDrops++
	d.host.Counters.PacketsDropped++
	d.host.Sim().Counters.PacketsDropped++
	tr := d.host.Sim().Tracer()
	now := d.host.Clock().Now()
	if tr != nil {
		tr.Drop(now, d.host.Name(), "admission")
	}
	tr.SpanDrop(span, now, d.host.Name(), trace.DropAdmission)
}

// GovStats is the governor's device-wide report: the admission
// controller's state and the port buckets' aggregate activity.
type GovStats struct {
	Shedding        bool   `json:"shedding"`
	Backlog         int    `json:"backlog"`
	AdmissionSheds  uint64 `json:"admission_sheds"`
	Quarantines     uint64 `json:"quarantines"`
	QuarantineSkips uint64 `json:"quarantine_skips"`
	FuelSpent       uint64 `json:"fuel_spent"`
}

// GovStats reports the governor's statistics.  Process context;
// charges an ioctl.  Ports already closed no longer contribute.
func (d *Device) GovStats(p *sim.Proc) GovStats {
	p.Syscall("pf")
	gs := GovStats{
		Shedding:       d.shedding,
		Backlog:        d.backlog(),
		AdmissionSheds: d.admissionSheds,
	}
	for _, port := range d.ports {
		gs.Quarantines += port.quarantines
		gs.QuarantineSkips += port.quarSkips
		gs.FuelSpent += port.fuelSpent
	}
	return gs
}
