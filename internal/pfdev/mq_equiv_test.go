package pfdev

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/ethersim"
	"repro/internal/filter"
	"repro/internal/parsim"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Cross-queue equivalence: multi-queue receive parallelizes the demux
// across kernel lanes, but it must not change a single observable
// verdict.  For pinned seeds, a device at Queues:N and the same device
// at Queues:1 must agree on per-port delivered frames, match/instr
// verdicts, the drop taxonomy and governor fuel — after per-flow order
// normalization, because cross-flow interleaving is exactly the
// freedom the parallel queues buy.

// mqPortSum is one port's observable outcome, with deliveries grouped
// by flow (the per-flow normalization).
type mqPortSum struct {
	matched uint64
	instrs  uint64
	fuel    uint64
	dropped uint64
	flows   [][]byte // flow id -> delivered sequence numbers, in order
}

// mqSum is one run's full observable outcome.
type mqSum struct {
	ports       []mqPortSum
	created     uint64
	drops       [trace.NumDropReasons]uint64
	kernelDrops uint64
	delivered   int
}

const mqFlows = 6

// mqEquivRun drives one pinned traffic schedule into a device with the
// given queue count and returns everything an equivalent run must
// reproduce.  The filter set is bound before traffic and never churned
// (a mid-run rebind would legitimately catch different frames at
// different queue counts); busy-first reordering is off for the same
// reason.  The governor runs with an effectively unlimited budget, so
// fuel is charged per evaluation but no admission decision ever
// depends on timing.
func mqEquivRun(t *testing.T, seed int64, mode EvalMode, queues, budget int, delay time.Duration) mqSum {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))

	nPorts := 2 + rng.Intn(4)
	specs := make([]equivSpec, nPorts)
	for i := range specs {
		specs[i] = randSpec(rng)
	}
	const nFrames = 48
	type sched struct {
		flow   int
		seq    byte
		socket uint32
		gap    time.Duration
	}
	frames := make([]sched, nFrames)
	flowSeq := make([]byte, mqFlows)
	for i := range frames {
		f := rng.Intn(mqFlows)
		frames[i] = sched{
			flow:   f,
			seq:    flowSeq[f],
			socket: uint32(34 + rng.Intn(5)), // some match nothing
			gap:    time.Duration(rng.Intn(400)) * time.Microsecond,
		}
		flowSeq[f]++
	}

	s := sim.New(vtime.DefaultCosts())
	tr := trace.New()
	sp := tr.EnableSpans(trace.SpanConfig{})
	s.SetTracer(tr)
	net := ethersim.New(s, ethersim.Ether3Mb)
	hs, hr := s.NewHost("src"), s.NewHost("recv")
	ns := net.Attach(hs, 1)
	nr := net.Attach(hr, 2)
	nr.QueueLimit = 4 * nFrames
	d := Attach(nr, nil, Options{
		Mode:           mode,
		Queues:         queues,
		CoalesceBudget: budget,
		CoalesceDelay:  delay,
		Gov: GovConfig{
			Enabled:       true,
			Rate:          1e12,
			Burst:         1 << 30,
			AdmissionHigh: 1 << 30,
		},
	})

	slots := make([]*Port, nPorts)
	s.Spawn(hr, "ctl", func(p *sim.Proc) {
		for i, spec := range specs {
			port := d.Open(p)
			if err := port.SetFilter(p, spec.f); err != nil {
				t.Errorf("seed %d: SetFilter: %v", seed, err)
			}
			port.SetQueueLimit(p, 4*nFrames)
			port.SetCopyAll(p, spec.copyAll)
			slots[i] = port
		}
	})
	s.Spawn(hs, "send", func(p *sim.Proc) {
		p.Sleep(10 * time.Millisecond) // let the receiver finish setup
		for _, fr := range frames {
			frame := pupTo(2, ethersim.Addr(10+fr.flow), 1, fr.socket)
			// Tag flow and sequence in payload bytes no filter
			// inspects, so delivered sequences are comparable.
			frame[4+16] = fr.seq
			frame[4+17] = byte(fr.flow)
			ns.Transmit(frame)
			p.Sleep(fr.gap)
		}
	})
	s.Run(2 * time.Second)

	sum := mqSum{created: sp.Created, drops: sp.Drops, kernelDrops: d.KernelDrops}
	for _, port := range slots {
		ps := mqPortSum{
			matched: port.matches, instrs: port.instrs,
			fuel: port.fuelSpent, dropped: port.dropped,
			flows: make([][]byte, mqFlows),
		}
		for _, pkt := range port.queued() {
			f := pkt.Data[4+17]
			ps.flows[f] = append(ps.flows[f], pkt.Data[4+16])
			sum.delivered++
		}
		sum.ports = append(sum.ports, ps)
	}
	return sum
}

// mqDiff compares two runs' outcomes and reports the first mismatch.
func mqDiff(a, b mqSum) string {
	if a.created != b.created {
		return fmt.Sprintf("spans created %d vs %d", a.created, b.created)
	}
	if a.drops != b.drops {
		return fmt.Sprintf("drop taxonomy %v vs %v", a.drops, b.drops)
	}
	if a.kernelDrops != b.kernelDrops {
		return fmt.Sprintf("kernel drops %d vs %d", a.kernelDrops, b.kernelDrops)
	}
	for i := range a.ports {
		pa, pb := a.ports[i], b.ports[i]
		if pa.matched != pb.matched || pa.instrs != pb.instrs ||
			pa.fuel != pb.fuel || pa.dropped != pb.dropped {
			return fmt.Sprintf(
				"port %d verdicts: matched %d/%d instrs %d/%d fuel %d/%d dropped %d/%d",
				i, pa.matched, pb.matched, pa.instrs, pb.instrs,
				pa.fuel, pb.fuel, pa.dropped, pb.dropped)
		}
		for f := 0; f < mqFlows; f++ {
			if fmt.Sprint(pa.flows[f]) != fmt.Sprint(pb.flows[f]) {
				return fmt.Sprintf("port %d flow %d sequence %v vs %v",
					i, f, pa.flows[f], pb.flows[f])
			}
		}
	}
	return ""
}

// TestMultiQueueEquivalence is the pinned cross-queue property: for
// every seed, mode, coalesce setting and queue count, the multi-queue
// device is observably identical to the single-queue one after
// per-flow normalization.  Trials run on the parsim pool (and under
// -race in CI) so the comparison also exercises the worker machinery.
func TestMultiQueueEquivalence(t *testing.T) {
	for _, co := range []struct {
		name   string
		budget int
		delay  time.Duration
	}{
		{"nocoalesce", 0, 0},
		{"coalesce", 4, 2 * time.Millisecond},
	} {
		t.Run(co.name, func(t *testing.T) {
			const trials = 10
			rng := rand.New(rand.NewSource(11))
			seeds := make([]int64, trials)
			for i := range seeds {
				seeds[i] = rng.Int63()
			}
			modes := []EvalMode{EvalChecked, EvalTable}
			type cell struct {
				seed int64
				mode EvalMode
			}
			var cells []cell
			for _, seed := range seeds {
				for _, m := range modes {
					cells = append(cells, cell{seed, m})
				}
			}
			results := parsim.Map(len(cells), 0, func(i int) string {
				c := cells[i]
				base := mqEquivRun(t, c.seed, c.mode, 1, co.budget, co.delay)
				if base.delivered == 0 && base.created == 0 {
					return "vacuous: no frames on the wire"
				}
				for _, q := range []int{4, 8} {
					mq := mqEquivRun(t, c.seed, c.mode, q, co.budget, co.delay)
					if diff := mqDiff(base, mq); diff != "" {
						return fmt.Sprintf("queues %d: %s", q, diff)
					}
				}
				return ""
			})
			delivered := false
			for i, diff := range results {
				if diff != "" {
					t.Errorf("seed %d mode %v: %s", cells[i].seed, cells[i].mode, diff)
				}
			}
			// Non-vacuity across the whole pack: at least one cell must
			// actually deliver frames.
			for _, c := range cells {
				if mqEquivRun(t, c.seed, c.mode, 1, co.budget, co.delay).delivered > 0 {
					delivered = true
					break
				}
			}
			if !delivered {
				t.Fatal("property held vacuously: no frames delivered in any cell")
			}
		})
	}
}

// TestMultiQueueDemuxCostBreakdown pins the tentpole's accounting: at
// Queues:4 the filter and delivery charges land under per-queue
// KernelTime tags ("filter.qN"/"pf.qN"), frames are steered, and a
// port fed by more than one queue pays cross-queue deliveries.
func TestMultiQueueDemuxCostBreakdown(t *testing.T) {
	s := sim.New(vtime.DefaultCosts())
	net := ethersim.New(s, ethersim.Ether3Mb)
	hs, hr := s.NewHost("src"), s.NewHost("recv")
	ns := net.Attach(hs, 1)
	nr := net.Attach(hr, 2)
	nr.QueueLimit = 256
	d := Attach(nr, nil, Options{Queues: 4})

	s.Spawn(hr, "ctl", func(p *sim.Proc) {
		port := d.Open(p)
		// A wildcard port: every flow (hence several queues) feeds it.
		wildcard := filter.Filter{Priority: 1,
			Program: filter.NewBuilder().AcceptAll().MustProgram()}
		if err := port.SetFilter(p, wildcard); err != nil {
			t.Errorf("SetFilter: %v", err)
		}
		port.SetQueueLimit(p, 256)
	})
	const frames = 32
	s.Spawn(hs, "send", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		for i := 0; i < frames; i++ {
			ns.Transmit(pupTo(2, ethersim.Addr(10+i%mqFlows), 1, 35))
			p.Sleep(200 * time.Microsecond)
		}
	})
	s.Run(0)

	if hr.Counters.SteeredFrames != frames {
		t.Errorf("SteeredFrames = %d, want %d", hr.Counters.SteeredFrames, frames)
	}
	busy := 0
	for q := 0; q < 4; q++ {
		fTag, pTag := fmt.Sprintf("filter.q%d", q), fmt.Sprintf("pf.q%d", q)
		if (hr.KernelTime[fTag] > 0) != (hr.KernelTime[pTag] > 0) {
			t.Errorf("queue %d: filter time %v but pf time %v",
				q, hr.KernelTime[fTag], hr.KernelTime[pTag])
		}
		if hr.KernelTime[fTag] > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Errorf("filter cost on %d queues, want the flows spread over at least 2", busy)
	}
	// The single-queue demux tag must stay empty ("pf" still carries
	// ioctl syscall charges, so only "filter" is demux-exclusive).
	if hr.KernelTime["filter"] != 0 {
		t.Errorf("multi-queue device charged the single-queue filter tag: %v",
			hr.KernelTime["filter"])
	}
	// One port served by several queues: every queue switch at the
	// port is one cross-queue delivery charge.
	if hr.Counters.XQDeliveries == 0 {
		t.Error("no XQDeliveries despite one port fed from multiple queues")
	}
	if hr.Counters.XQDeliveries >= frames {
		t.Errorf("XQDeliveries = %d for %d frames: charged per frame, not per queue switch",
			hr.Counters.XQDeliveries, frames)
	}
}
