package pfdev

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
)

// stormRun drives a bursty receive workload — the sender blasts frames
// back-to-back so the receiving CPU falls behind — with the given
// coalescing config, and returns the rig after the run.
func stormRun(t *testing.T, budget int, delay time.Duration, nFrames int) (*rig, int) {
	t.Helper()
	r := newRig(t, Options{CoalesceBudget: budget, CoalesceDelay: delay})
	got := 0
	r.s.Spawn(r.hb, "recv", func(p *sim.Proc) {
		port := r.db.Open(p)
		port.SetFilter(p, socketFilter(10, 35))
		port.SetQueueLimit(p, 4*nFrames)
		port.SetTimeout(p, 50*time.Millisecond)
		for {
			batch, err := port.ReadBatch(p)
			if err != nil {
				return
			}
			got += len(batch)
		}
	})
	r.s.Spawn(r.ha, "send", func(p *sim.Proc) {
		p.Sleep(5 * time.Millisecond) // let the receiver finish setup
		for i := 0; i < nFrames; i++ {
			// Raw transmits, not port writes: no syscall pacing, so
			// the frames are wire-back-to-back.
			r.da.NIC().Transmit(pupTo(2, 1, 1, 35))
		}
	})
	r.s.Run(0)
	return r, got
}

// TestCoalesceBatchesBurst is the tentpole's headline property: under a
// back-to-back burst, coalescing forms multi-frame bursts and cuts
// kernel entries and reader wakeups without losing or reordering
// anything.
func TestCoalesceBatchesBurst(t *testing.T) {
	const nFrames = 24
	plain, plainGot := stormRun(t, 0, 0, nFrames)
	coal, coalGot := stormRun(t, 4, time.Millisecond, nFrames)

	if plainGot != nFrames || coalGot != nFrames {
		t.Fatalf("delivered %d/%d frames, want %d/%d", plainGot, coalGot, nFrames, nFrames)
	}
	if plain.hb.Counters.Bursts != 0 {
		t.Errorf("uncoalesced run recorded %d bursts", plain.hb.Counters.Bursts)
	}
	pc, cc := plain.hb.Counters, coal.hb.Counters
	if cc.Bursts == 0 || cc.CoalescedFrames != nFrames {
		t.Fatalf("coalesced run: bursts=%d coalesced=%d, want >0 and %d",
			cc.Bursts, cc.CoalescedFrames, nFrames)
	}
	if cc.Bursts >= nFrames {
		t.Errorf("%d bursts for %d frames: nothing batched", cc.Bursts, nFrames)
	}
	if cc.KernelEntries >= pc.KernelEntries {
		t.Errorf("kernel entries did not drop: %d coalesced vs %d plain",
			cc.KernelEntries, pc.KernelEntries)
	}
	if cc.PacketsMatched != pc.PacketsMatched {
		t.Errorf("matched %d coalesced vs %d plain", cc.PacketsMatched, pc.PacketsMatched)
	}
}

// pacedRun drives paced traffic (gaps longer than the per-packet
// service time, so the blocked reader wakes per delivery) with the
// given coalescing config and returns the receiving host's counters
// after all frames were read.
func pacedRun(t *testing.T, budget int, delay time.Duration, nFrames int) *rig {
	t.Helper()
	r := newRig(t, Options{CoalesceBudget: budget, CoalesceDelay: delay})
	got := 0
	r.s.Spawn(r.hb, "recv", func(p *sim.Proc) {
		port := r.db.Open(p)
		port.SetFilter(p, socketFilter(10, 35))
		port.SetQueueLimit(p, 4*nFrames)
		port.SetTimeout(p, 60*time.Millisecond)
		for {
			if _, err := port.Read(p); err != nil {
				break
			}
			got++
		}
	})
	r.s.Spawn(r.ha, "send", func(p *sim.Proc) {
		p.Sleep(5 * time.Millisecond)
		for i := 0; i < nFrames; i++ {
			r.da.NIC().Transmit(pupTo(2, 1, 1, 35))
			p.Sleep(2 * time.Millisecond)
		}
	})
	r.s.Run(0)
	if got != nFrames {
		t.Fatalf("read %d frames, want %d", got, nFrames)
	}
	return r
}

// TestCoalescePacedWakeups covers the reader-wakeup half of the
// tentpole: with paced traffic the uncoalesced device wakes the blocked
// reader once per packet, while a moderation delay longer than the
// packet gap gathers the stream into bursts and wakes the reader once
// per burst.
func TestCoalescePacedWakeups(t *testing.T) {
	const nFrames = 24
	plain := pacedRun(t, 0, 0, nFrames)
	coal := pacedRun(t, 4, 25*time.Millisecond, nFrames)

	pc, cc := plain.hb.Counters, coal.hb.Counters
	if cc.Bursts == 0 || cc.CoalescedFrames != nFrames {
		t.Fatalf("coalesced run: bursts=%d coalesced=%d, want >0 and %d",
			cc.Bursts, cc.CoalescedFrames, nFrames)
	}
	if cc.Wakeups*2 > pc.Wakeups {
		t.Errorf("wakeups did not drop 2x: %d coalesced vs %d plain", cc.Wakeups, pc.Wakeups)
	}
	if cc.KernelEntries*2 > pc.KernelEntries {
		t.Errorf("kernel entries did not drop 2x: %d coalesced vs %d plain",
			cc.KernelEntries, pc.KernelEntries)
	}
	if cc.PacketsMatched != pc.PacketsMatched {
		t.Errorf("matched %d coalesced vs %d plain", cc.PacketsMatched, pc.PacketsMatched)
	}
}

// tracedRun drives a fixed paced workload under the given options with
// a full event sink attached and returns the event stream.
func tracedRun(t *testing.T, opt Options) *trace.Recorder {
	t.Helper()
	r := newRig(t, opt)
	tr := trace.New()
	rec := &trace.Recorder{}
	tr.SetSink(rec)
	r.s.SetTracer(tr)
	r.s.Spawn(r.hb, "recv", func(p *sim.Proc) {
		port := r.db.Open(p)
		port.SetFilter(p, socketFilter(10, 35))
		port.SetTimeout(p, 30*time.Millisecond)
		for {
			if _, err := port.Read(p); err != nil {
				return
			}
		}
	})
	r.s.Spawn(r.ha, "send", func(p *sim.Proc) {
		port := r.da.Open(p)
		p.Sleep(time.Millisecond)
		for i := 0; i < 10; i++ {
			port.Write(p, pupTo(2, 1, byte(1+i%3), 35))
			p.Sleep(time.Duration(i%4) * time.Millisecond)
		}
	})
	r.s.Run(0)
	return rec
}

// TestCoalesceOffBitIdentical pins the acceptance criterion that
// disabling coalescing (budget 0, or the degenerate budget 1) leaves
// the receive path byte-for-byte as it was: the full trace event
// streams are identical.
func TestCoalesceOffBitIdentical(t *testing.T) {
	base := tracedRun(t, Options{})
	off := tracedRun(t, Options{CoalesceBudget: 1, CoalesceDelay: time.Millisecond})
	if len(base.Events) == 0 {
		t.Fatal("no events traced; test proves nothing")
	}
	if !reflect.DeepEqual(base.Events, off.Events) {
		t.Fatalf("budget<=1 perturbed the trace: %d events vs %d baseline",
			len(off.Events), len(base.Events))
	}
}

// TestCoalesceDeterminism runs the same coalesced storm twice and
// requires bit-identical event streams: the burst buffer, budget cutoff
// and moderation timer all ride the simulation event queue.
func TestCoalesceDeterminism(t *testing.T) {
	opt := Options{CoalesceBudget: 4, CoalesceDelay: time.Millisecond}
	a := tracedRun(t, opt)
	b := tracedRun(t, opt)
	if len(a.Events) == 0 {
		t.Fatal("no events traced")
	}
	if !reflect.DeepEqual(a.Events, b.Events) {
		t.Fatal("two identical coalesced runs diverged")
	}
}

// isolatedLatency sends one lone packet and returns the virtual time at
// which the blocked reader's Read completed.
func isolatedLatency(t *testing.T, opt Options) time.Duration {
	t.Helper()
	r := newRig(t, opt)
	var done time.Duration
	r.s.Spawn(r.hb, "recv", func(p *sim.Proc) {
		port := r.db.Open(p)
		port.SetFilter(p, socketFilter(10, 35))
		if _, err := port.Read(p); err != nil {
			t.Errorf("read: %v", err)
			return
		}
		done = p.Now()
	})
	r.s.Spawn(r.ha, "send", func(p *sim.Proc) {
		p.Sleep(5 * time.Millisecond)
		r.da.NIC().Transmit(pupTo(2, 1, 1, 35))
	})
	r.s.Run(0)
	if done == 0 {
		t.Fatal("packet never delivered")
	}
	return done
}

// TestCoalesceIsolatedLatencyUnchanged pins the other acceptance
// criterion: an isolated packet is flushed immediately (the NAPI
// first-interrupt path) and its singleton burst takes the ordinary
// per-frame path, so coalescing adds zero latency when there is
// nothing to batch.
func TestCoalesceIsolatedLatencyUnchanged(t *testing.T) {
	plain := isolatedLatency(t, Options{})
	coal := isolatedLatency(t, Options{CoalesceBudget: 8, CoalesceDelay: 5 * time.Millisecond})
	if plain != coal {
		t.Fatalf("isolated delivery at %v coalesced vs %v plain", coal, plain)
	}
}

// TestCoalesceCrashClearsBurst crashes the receiving host in the middle
// of a coalesced storm: the buffered burst and moderation timer die
// with the kernel, and after a restart a fresh port receives new
// traffic normally.
func TestCoalesceCrashClearsBurst(t *testing.T) {
	r := newRig(t, Options{CoalesceBudget: 4, CoalesceDelay: time.Millisecond})
	got := 0
	r.s.Spawn(r.hb, "recv", func(p *sim.Proc) {
		port := r.db.Open(p)
		port.SetFilter(p, socketFilter(10, 35))
		port.SetQueueLimit(p, 64)
		for {
			if _, err := port.Read(p); err != nil {
				return // ErrClosed at the crash
			}
		}
	})
	r.s.Spawn(r.ha, "send", func(p *sim.Proc) {
		p.Sleep(5 * time.Millisecond)
		for i := 0; i < 16; i++ {
			r.da.NIC().Transmit(pupTo(2, 1, 1, 35))
		}
		p.Sleep(25 * time.Millisecond) // second wave after the restart
		for i := 0; i < 4; i++ {
			r.da.NIC().Transmit(pupTo(2, 1, 1, 35))
		}
	})
	// The storm reaches host b from ~5.1ms; crash lands mid-burst.
	r.s.After(5*time.Millisecond+200*time.Microsecond, func() { r.hb.Crash() })
	r.s.After(20*time.Millisecond, func() {
		r.hb.Restart()
		r.s.Spawn(r.hb, "recv2", func(p *sim.Proc) {
			port := r.db.Open(p)
			port.SetFilter(p, socketFilter(10, 35))
			port.SetTimeout(p, 40*time.Millisecond)
			for {
				if _, err := port.Read(p); err != nil {
					return
				}
				got++
			}
		})
	})
	r.s.Run(0)
	if got != 4 {
		t.Fatalf("post-restart port received %d packets, want 4", got)
	}
}
