package pfdev

import (
	"testing"
	"time"

	"repro/internal/ethersim"
	"repro/internal/filter"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// rig is a two-host 3Mb-Ethernet test fixture with a packet-filter
// device on each host.
type rig struct {
	s      *sim.Sim
	net    *ethersim.Network
	ha, hb *sim.Host
	da, db *Device
}

func newRig(t *testing.T, opt Options) *rig {
	t.Helper()
	s := sim.New(vtime.DefaultCosts())
	net := ethersim.New(s, ethersim.Ether3Mb)
	ha, hb := s.NewHost("a"), s.NewHost("b")
	na := net.Attach(ha, 1)
	nb := net.Attach(hb, 2)
	return &rig{
		s: s, net: net, ha: ha, hb: hb,
		da: Attach(na, nil, opt),
		db: Attach(nb, nil, opt),
	}
}

// pupTo builds a 3Mb Pup frame to dst with the given type and socket.
func pupTo(dst ethersim.Addr, src ethersim.Addr, pupType uint8, socket uint32) []byte {
	payload := make([]byte, 22)
	payload[3] = pupType
	payload[10] = byte(socket >> 24)
	payload[11] = byte(socket >> 16)
	payload[12] = byte(socket >> 8)
	payload[13] = byte(socket)
	return ethersim.Ether3Mb.Encode(dst, src, ethersim.EtherTypePup3Mb, payload)
}

func socketFilter(prio uint8, socket uint32) filter.Filter {
	return filter.DstSocketFilter(prio, socket)
}

func TestRoundTripDelivery(t *testing.T) {
	r := newRig(t, Options{})
	var got Packet
	var err error
	r.s.Spawn(r.hb, "recv", func(p *sim.Proc) {
		port := r.db.Open(p)
		if err := port.SetFilter(p, socketFilter(10, 35)); err != nil {
			t.Error(err)
			return
		}
		got, err = port.Read(p)
	})
	r.s.Spawn(r.ha, "send", func(p *sim.Proc) {
		port := r.da.Open(p)
		port.SetFilter(p, socketFilter(10, 99)) // unrelated
		p.Sleep(time.Millisecond)
		if werr := port.Write(p, pupTo(2, 1, 1, 35)); werr != nil {
			t.Error(werr)
		}
	})
	r.s.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Data) != 26 {
		t.Fatalf("got %d bytes", len(got.Data))
	}
	// The frame includes the data-link header.
	if got.Data[2] != 0 || got.Data[3] != byte(ethersim.EtherTypePup3Mb) {
		t.Fatalf("ether type bytes = %v", got.Data[2:4])
	}
}

func TestPriorityOrder(t *testing.T) {
	// Two filters both accept the packet; the higher priority port
	// must get it and the lower must not (§3.2).
	r := newRig(t, Options{})
	var hiGot, loGot int
	done := make(chan struct{})
	_ = done
	r.s.Spawn(r.hb, "recv", func(p *sim.Proc) {
		lo := r.db.Open(p)
		lo.SetFilter(p, socketFilter(1, 35))
		hi := r.db.Open(p)
		hi.SetFilter(p, socketFilter(9, 35))
		lo.SetTimeout(p, 20*time.Millisecond)
		hi.SetTimeout(p, 20*time.Millisecond)
		if _, err := hi.Read(p); err == nil {
			hiGot++
		}
		if _, err := lo.Read(p); err == nil {
			loGot++
		}
	})
	r.s.Spawn(r.ha, "send", func(p *sim.Proc) {
		port := r.da.Open(p)
		p.Sleep(time.Millisecond)
		port.Write(p, pupTo(2, 1, 1, 35))
	})
	r.s.Run(0)
	if hiGot != 1 || loGot != 0 {
		t.Fatalf("hi=%d lo=%d, want 1/0", hiGot, loGot)
	}
}

func TestCopyAllDeliversToLowerPriority(t *testing.T) {
	// A monitor with copy-all set sees the packet and so does the
	// lower-priority real consumer (§3.2's monitoring use case).
	r := newRig(t, Options{})
	var monGot, loGot bool
	r.s.Spawn(r.hb, "recv", func(p *sim.Proc) {
		lo := r.db.Open(p)
		lo.SetFilter(p, socketFilter(1, 35))
		mon := r.db.Open(p)
		mon.SetFilter(p, filter.Filter{Priority: 200,
			Program: filter.NewBuilder().AcceptAll().MustProgram()})
		mon.SetCopyAll(p, true)
		mon.SetTimeout(p, 20*time.Millisecond)
		lo.SetTimeout(p, 20*time.Millisecond)
		if _, err := mon.Read(p); err == nil {
			monGot = true
		}
		if _, err := lo.Read(p); err == nil {
			loGot = true
		}
	})
	r.s.Spawn(r.ha, "send", func(p *sim.Proc) {
		port := r.da.Open(p)
		p.Sleep(10 * time.Millisecond) // let the receiver finish its ioctls
		port.Write(p, pupTo(2, 1, 1, 35))
	})
	r.s.Run(0)
	if !monGot || !loGot {
		t.Fatalf("monitor=%v consumer=%v, want both", monGot, loGot)
	}
}

func TestReadTimeoutAndNonblocking(t *testing.T) {
	r := newRig(t, Options{})
	r.s.Spawn(r.hb, "recv", func(p *sim.Proc) {
		port := r.db.Open(p)
		port.SetFilter(p, socketFilter(10, 35))
		port.SetTimeout(p, 5*time.Millisecond)
		start := p.Now()
		if _, err := port.Read(p); err != ErrTimeout {
			t.Errorf("err = %v, want ErrTimeout", err)
		}
		if waited := p.Now() - start; waited < 5*time.Millisecond {
			t.Errorf("returned after %v", waited)
		}
		port.SetTimeout(p, -1)
		if _, err := port.Read(p); err != ErrWouldBlock {
			t.Errorf("err = %v, want ErrWouldBlock", err)
		}
		if _, err := port.ReadBatch(p); err != ErrWouldBlock {
			t.Errorf("batch err = %v, want ErrWouldBlock", err)
		}
	})
	r.s.Run(0)
}

func TestReadBatch(t *testing.T) {
	r := newRig(t, Options{})
	var batch []Packet
	r.s.Spawn(r.hb, "recv", func(p *sim.Proc) {
		port := r.db.Open(p)
		port.SetFilter(p, socketFilter(10, 35))
		p.Sleep(20 * time.Millisecond) // let several packets queue
		var err error
		batch, err = port.ReadBatch(p)
		if err != nil {
			t.Error(err)
		}
	})
	r.s.Spawn(r.ha, "send", func(p *sim.Proc) {
		port := r.da.Open(p)
		for i := 0; i < 5; i++ {
			port.Write(p, pupTo(2, 1, byte(i+1), 35))
		}
	})
	r.s.Run(0)
	if len(batch) != 5 {
		t.Fatalf("batch size = %d, want 5", len(batch))
	}
	for i, pkt := range batch {
		if pkt.Data[7] != byte(i+1) { // PupType byte, in order
			t.Fatalf("batch out of order at %d", i)
		}
	}
}

func TestBatchMax(t *testing.T) {
	r := newRig(t, Options{})
	r.s.Spawn(r.hb, "recv", func(p *sim.Proc) {
		port := r.db.Open(p)
		port.SetFilter(p, socketFilter(10, 35))
		port.SetBatchMax(p, 2)
		p.Sleep(20 * time.Millisecond)
		b1, _ := port.ReadBatch(p)
		b2, _ := port.ReadBatch(p)
		if len(b1) != 2 || len(b2) != 2 {
			t.Errorf("batches = %d,%d want 2,2", len(b1), len(b2))
		}
	})
	r.s.Spawn(r.ha, "send", func(p *sim.Proc) {
		port := r.da.Open(p)
		for i := 0; i < 4; i++ {
			port.Write(p, pupTo(2, 1, 1, 35))
		}
	})
	r.s.Run(0)
}

func TestQueueOverflowDrops(t *testing.T) {
	r := newRig(t, Options{})
	r.s.Spawn(r.hb, "recv", func(p *sim.Proc) {
		port := r.db.Open(p)
		port.SetFilter(p, socketFilter(10, 35))
		port.SetQueueLimit(p, 2)
		p.Sleep(50 * time.Millisecond)
		// The 8-packet burst overflowed the 2-entry queue.
		if st := port.Stats(); st.Queued != 2 || st.Dropped != 6 {
			t.Errorf("queued=%d dropped=%d, want 2/6", st.Queued, st.Dropped)
		}
		port.Read(p)
		port.Read(p)
		// A packet arriving after the overflow reports the
		// cumulative drop count (§3.3).
		pkt, err := port.Read(p)
		if err != nil {
			t.Error(err)
			return
		}
		if pkt.Drops != 6 {
			t.Errorf("pkt.Drops = %d, want 6", pkt.Drops)
		}
	})
	r.s.Spawn(r.ha, "send", func(p *sim.Proc) {
		port := r.da.Open(p)
		p.Sleep(10 * time.Millisecond)
		for i := 0; i < 8; i++ {
			port.Write(p, pupTo(2, 1, 1, 35))
		}
		p.Sleep(60 * time.Millisecond)
		port.Write(p, pupTo(2, 1, 1, 35))
	})
	r.s.Run(0)
}

func TestStamping(t *testing.T) {
	r := newRig(t, Options{})
	r.s.Spawn(r.hb, "recv", func(p *sim.Proc) {
		port := r.db.Open(p)
		port.SetFilter(p, socketFilter(10, 35))
		port.SetStamp(p, true)
		pkt, err := port.Read(p)
		if err != nil {
			t.Error(err)
			return
		}
		if pkt.Stamp == 0 {
			t.Error("no timestamp")
		}
		if pkt.Stamp > p.Now() {
			t.Error("timestamp in the future")
		}
	})
	r.s.Spawn(r.ha, "send", func(p *sim.Proc) {
		port := r.da.Open(p)
		p.Sleep(time.Millisecond)
		port.Write(p, pupTo(2, 1, 1, 35))
	})
	r.s.Run(0)
}

func TestUnmatchedPacketsDropped(t *testing.T) {
	r := newRig(t, Options{})
	r.s.Spawn(r.hb, "recv", func(p *sim.Proc) {
		port := r.db.Open(p)
		port.SetFilter(p, socketFilter(10, 999))
		port.SetTimeout(p, 20*time.Millisecond)
		if _, err := port.Read(p); err != ErrTimeout {
			t.Errorf("err = %v", err)
		}
	})
	r.s.Spawn(r.ha, "send", func(p *sim.Proc) {
		port := r.da.Open(p)
		p.Sleep(time.Millisecond)
		port.Write(p, pupTo(2, 1, 1, 35))
	})
	r.s.Run(0)
	if r.db.KernelDrops != 1 {
		t.Fatalf("kernel drops = %d, want 1", r.db.KernelDrops)
	}
}

func TestEvalModesAgree(t *testing.T) {
	for _, mode := range []EvalMode{EvalChecked, EvalFast, EvalCompiled, EvalTable} {
		r := newRig(t, Options{Mode: mode})
		var got int
		r.s.Spawn(r.hb, "recv", func(p *sim.Proc) {
			port := r.db.Open(p)
			if err := port.SetFilter(p, socketFilter(10, 35)); err != nil {
				t.Errorf("mode %d: %v", mode, err)
				return
			}
			port.SetTimeout(p, 50*time.Millisecond)
			for {
				if _, err := port.Read(p); err != nil {
					return
				}
				got++
			}
		})
		r.s.Spawn(r.ha, "send", func(p *sim.Proc) {
			port := r.da.Open(p)
			p.Sleep(time.Millisecond)
			port.Write(p, pupTo(2, 1, 1, 35))
			port.Write(p, pupTo(2, 1, 1, 36)) // no match
			port.Write(p, pupTo(2, 1, 2, 35))
		})
		r.s.Run(0)
		if got != 2 {
			t.Errorf("mode %d: delivered %d, want 2", mode, got)
		}
	}
}

func TestSetFilterValidatesInFastModes(t *testing.T) {
	bad := filter.Filter{Priority: 1, Program: filter.Program{filter.MkInstr(filter.NOPUSH, filter.EQ)}}
	for _, mode := range []EvalMode{EvalFast, EvalCompiled} {
		r := newRig(t, Options{Mode: mode})
		r.s.Spawn(r.hb, "p", func(p *sim.Proc) {
			port := r.db.Open(p)
			if err := port.SetFilter(p, bad); err == nil {
				t.Errorf("mode %d accepted invalid program", mode)
			}
		})
		r.s.Run(0)
	}
}

func TestSelect(t *testing.T) {
	r := newRig(t, Options{})
	var selected int
	r.s.Spawn(r.hb, "recv", func(p *sim.Proc) {
		p1 := r.db.Open(p)
		p1.SetFilter(p, socketFilter(10, 35))
		p2 := r.db.Open(p)
		p2.SetFilter(p, socketFilter(10, 36))
		selected = Select(p, []*Port{p1, p2}, 50*time.Millisecond)
	})
	r.s.Spawn(r.ha, "send", func(p *sim.Proc) {
		port := r.da.Open(p)
		p.Sleep(time.Millisecond)
		port.Write(p, pupTo(2, 1, 1, 36))
	})
	r.s.Run(0)
	if selected != 1 {
		t.Fatalf("selected = %d, want 1", selected)
	}
}

func TestSelectTimeout(t *testing.T) {
	r := newRig(t, Options{})
	var selected int
	r.s.Spawn(r.hb, "recv", func(p *sim.Proc) {
		p1 := r.db.Open(p)
		p1.SetFilter(p, socketFilter(10, 35))
		selected = Select(p, []*Port{p1}, 5*time.Millisecond)
	})
	r.s.Run(0)
	if selected != -1 {
		t.Fatalf("selected = %d, want -1", selected)
	}
}

func TestCloseWakesReader(t *testing.T) {
	r := newRig(t, Options{})
	var readErr error
	r.s.Spawn(r.hb, "recv", func(p *sim.Proc) {
		port := r.db.Open(p)
		port.SetFilter(p, socketFilter(10, 35))
		r.s.After(2*time.Millisecond, func() {
			r.s.Spawn(r.hb, "closer", func(p2 *sim.Proc) { port.Close(p2) })
		})
		_, readErr = port.Read(p)
	})
	r.s.Run(0)
	if readErr != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", readErr)
	}
}

func TestKernelProtocolClaims(t *testing.T) {
	claimed := 0
	kern := claimFunc(func(frame []byte) bool {
		_, _, typ, _, _ := ethersim.Ether3Mb.Decode(frame)
		if typ == 0x0800 {
			claimed++
			return true
		}
		return false
	})
	s := sim.New(vtime.DefaultCosts())
	net := ethersim.New(s, ethersim.Ether3Mb)
	ha, hb := s.NewHost("a"), s.NewHost("b")
	na := net.Attach(ha, 1)
	nb := net.Attach(hb, 2)
	db := Attach(nb, kern, Options{})
	var pfGot int
	s.Spawn(hb, "recv", func(p *sim.Proc) {
		port := db.Open(p)
		port.SetFilter(p, filter.Filter{Priority: 1,
			Program: filter.NewBuilder().AcceptAll().MustProgram()})
		port.SetTimeout(p, 30*time.Millisecond)
		for {
			if _, err := port.Read(p); err != nil {
				return
			}
			pfGot++
		}
	})
	s.Spawn(ha, "send", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		na.Transmit(ethersim.Ether3Mb.Encode(2, 1, 0x0800, make([]byte, 20))) // kernel
		na.Transmit(ethersim.Ether3Mb.Encode(2, 1, 2, make([]byte, 20)))      // pf
	})
	s.Run(0)
	if claimed != 1 || pfGot != 1 {
		t.Fatalf("claimed=%d pfGot=%d, want 1/1", claimed, pfGot)
	}
}

type claimFunc func([]byte) bool

func (f claimFunc) Claim(frame []byte) bool { return f(frame) }

func TestBusyFirstReordering(t *testing.T) {
	// With many same-priority filters and traffic concentrated on
	// the last one, reordering must cut the instructions executed
	// per packet.
	run := func(reorder bool) uint64 {
		s := sim.New(vtime.DefaultCosts())
		net := ethersim.New(s, ethersim.Ether3Mb)
		ha, hb := s.NewHost("a"), s.NewHost("b")
		na := net.Attach(ha, 1)
		db := Attach(net.Attach(hb, 2), nil, Options{Reorder: reorder, ReorderEvery: 16})
		s.Spawn(hb, "recv", func(p *sim.Proc) {
			for sock := uint32(0); sock < 8; sock++ {
				port := db.Open(p)
				port.SetFilter(p, socketFilter(10, sock))
				port.SetQueueLimit(p, 1000)
			}
			// Ports drain nothing; we only count kernel work.
			p.Wait(s.NewWaitQ(), 400*time.Millisecond)
		})
		s.Spawn(ha, "send", func(p *sim.Proc) {
			// Let the receiver finish binding all eight filters
			// first; a packet storm during setup livelocks the
			// receiving host's CPU with interrupt work.
			p.Sleep(30 * time.Millisecond)
			for i := 0; i < 100; i++ {
				// All traffic goes to the lowest-listed socket 7.
				na.Transmit(pupTo(2, 1, 1, 7))
				p.Sleep(2 * time.Millisecond)
			}
		})
		s.Run(0)
		return hb.Counters.FilterInstrs
	}
	plain, reordered := run(false), run(true)
	if reordered >= plain {
		t.Fatalf("reordering did not help: %d vs %d instrs", reordered, plain)
	}
}

func TestStatusBlock(t *testing.T) {
	r := newRig(t, Options{})
	r.s.Spawn(r.hb, "p", func(p *sim.Proc) {
		st := r.db.Status(p)
		if st.LinkType != ethersim.Ether3Mb || st.HeaderLen != 4 || st.AddrLen != 1 {
			t.Errorf("status = %+v", st)
		}
		if st.Addr != 2 || st.Broadcast != ethersim.Broadcast3Mb {
			t.Errorf("addr/broadcast = %v/%v", st.Addr, st.Broadcast)
		}
		if st.MaxPacket != ethersim.Ether3Mb.MaxFrame() {
			t.Errorf("max packet = %d", st.MaxPacket)
		}
	})
	r.s.Run(0)
}

func TestFilterCostCharged(t *testing.T) {
	// Binding a 0-instruction vs a long filter must change kernel
	// "filter" CPU time (the table 6-10 effect).
	recvWith := func(f filter.Filter) time.Duration {
		r := newRig(t, Options{})
		r.s.Spawn(r.hb, "recv", func(p *sim.Proc) {
			port := r.db.Open(p)
			port.SetFilter(p, f)
			port.SetTimeout(p, 100*time.Millisecond)
			for {
				if _, err := port.Read(p); err != nil {
					return
				}
			}
		})
		r.s.Spawn(r.ha, "send", func(p *sim.Proc) {
			port := r.da.Open(p)
			for i := 0; i < 20; i++ {
				port.Write(p, pupTo(2, 1, 1, 35))
				p.Sleep(2 * time.Millisecond)
			}
		})
		r.s.Run(0)
		return r.hb.KernelTime["pf"]
	}
	short := recvWith(filter.Filter{Priority: 1,
		Program: filter.NewBuilder().AcceptAll().MustProgram()})
	long := recvWith(filter.Fig38PupTypeRange())
	if long <= short {
		t.Fatalf("long filter not more expensive: %v vs %v", long, short)
	}
}

// TestHostGlobalCounterConsistency drives a traced mixed workload and
// checks two invariants: the per-host vtime counters sum exactly to
// the simulation-global counters, and the trace layer's counters
// mirror the host's own bookkeeping field for field.
func TestHostGlobalCounterConsistency(t *testing.T) {
	r := newRig(t, Options{})
	tr := trace.New()
	r.s.SetTracer(tr)

	r.s.Spawn(r.hb, "recv", func(p *sim.Proc) {
		single := r.db.Open(p)
		single.SetFilter(p, socketFilter(10, 35))
		single.SetTimeout(p, 20*time.Millisecond)
		batch := r.db.Open(p)
		batch.SetFilter(p, socketFilter(5, 36))
		batch.SetTimeout(p, 20*time.Millisecond)
		for {
			if _, err := single.Read(p); err != nil {
				break
			}
		}
		for {
			if _, err := batch.ReadBatch(p); err != nil {
				break
			}
		}
	})
	r.s.Spawn(r.ha, "send", func(p *sim.Proc) {
		port := r.da.Open(p)
		p.Sleep(time.Millisecond)
		for i := 0; i < 12; i++ {
			port.Write(p, pupTo(2, 1, 1, uint32(35+i%3))) // socket 37: no match
			p.Sleep(3 * time.Millisecond)
		}
	})
	r.s.Run(0)

	var sum vtime.Counters
	for _, h := range r.s.Hosts() {
		sum.Add(h.Counters)
	}
	if sum != r.s.Counters {
		t.Fatalf("host counters do not sum to global:\n  sum    %+v\n  global %+v",
			sum, r.s.Counters)
	}

	snap := tr.Snapshot()
	for _, host := range []struct {
		name string
		c    vtime.Counters
	}{{"a", r.ha.Counters}, {"b", r.hb.Counters}} {
		for _, chk := range []struct {
			metric string
			want   uint64
		}{
			{"sched.ctxswitch", host.c.ContextSwitches},
			{"sys.calls", host.c.Syscalls},
			{"sys.copies", host.c.Copies},
			{"sys.copy_bytes", host.c.BytesCopied},
			{"sched.wakeups", host.c.Wakeups},
			{"wire.rx", host.c.PacketsIn},
			{"pf.evals", host.c.FilterApplied},
			{"pf.instrs", host.c.FilterInstrs},
			{"pf.matched", host.c.PacketsMatched},
		} {
			if got := snap.CounterValue(host.name, chk.metric); got != chk.want {
				t.Errorf("host %s: trace %s = %d, host counter = %d",
					host.name, chk.metric, got, chk.want)
			}
		}
	}
	if r.hb.Counters.PacketsMatched == 0 {
		t.Fatal("workload matched no packets; test proves nothing")
	}
}

// TestPortStats exercises the unified per-port statistics block: match
// and instruction counts, queue high-water mark, read/batch counters,
// and the PortStats device status read.
func TestPortStats(t *testing.T) {
	r := newRig(t, Options{})
	var single, batch PortStats
	var all []PortStats
	r.s.Spawn(r.hb, "recv", func(p *sim.Proc) {
		sp := r.db.Open(p)
		sp.SetFilter(p, socketFilter(10, 35))
		bp := r.db.Open(p)
		bp.SetFilter(p, socketFilter(5, 36))
		p.Sleep(40 * time.Millisecond) // let traffic queue up
		sp.Read(p)
		sp.Read(p)
		bp.ReadBatch(p)
		single, batch = sp.Stats(), bp.Stats()
		all = r.db.PortStats(p)
	})
	r.s.Spawn(r.ha, "send", func(p *sim.Proc) {
		port := r.da.Open(p)
		p.Sleep(time.Millisecond)
		for i := 0; i < 3; i++ {
			port.Write(p, pupTo(2, 1, 1, 35))
			port.Write(p, pupTo(2, 1, 1, 36))
		}
	})
	r.s.Run(0)

	if single.Matched != 3 || single.Reads != 2 || single.Queued != 1 ||
		single.MaxQueued != 3 || single.Dropped != 0 {
		t.Errorf("single-read port stats = %+v", single)
	}
	if single.FilterInstrs == 0 {
		t.Error("no filter instructions recorded for matching port")
	}
	if batch.Matched != 3 || batch.BatchReads != 1 || batch.BatchPackets != 3 ||
		batch.Queued != 0 || batch.MaxQueued != 3 {
		t.Errorf("batch port stats = %+v", batch)
	}
	if len(all) != 2 || all[0].ID >= all[1].ID {
		t.Fatalf("device PortStats = %+v", all)
	}
	// The status read must agree with the per-port view.
	if all[0] != single || all[1] != batch {
		t.Errorf("status read disagrees with port stats:\n  %+v\n  %+v", all, []PortStats{single, batch})
	}
}
