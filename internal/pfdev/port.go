package pfdev

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/filter"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Packet is one received packet as returned by Read: the complete
// frame including the data-link header ("The entire packet, including
// the data-link layer header, is returned, so that user programs may
// implement protocols that depend on header information", §3), plus
// the optional timestamp and the cumulative drop count (§3.3).
type Packet struct {
	Data  []byte
	Stamp time.Duration // reception time; zero unless stamping enabled
	Drops uint64        // packets lost on this port up to this packet

	// arrived is when the frame entered the packet-filter input path,
	// the start of the arrival-to-delivery latency the tracer reports.
	arrived time.Duration

	// slot, when non-zero, is 1 + the ring receive slot holding Data.
	// The slot stays reserved — free for neither deposit nor reuse —
	// until the packet is copied out (Read/ReadBatch) or, after a
	// reap, until the process's next drain syscall reclaims it.
	slot int

	// span is the packet's provenance span (0 when untracked).
	span uint64

	// qAt is when the packet entered the port queue; delivery
	// subtracts it to feed the port's queue-residency accounting.
	qAt time.Duration
}

// Span returns the packet's provenance span id (0 when untracked), so
// user-level protocol code can link its own verdicts — checksum
// rejects, routing failures — back into the packet's causal tree.
func (pkt Packet) Span() uint64 { return pkt.span }

// Port is one packet-filter port, opened by a process as a character
// special device.
type Port struct {
	dev *Device
	id  int

	priority uint8
	prog     filter.Program
	pv       *filter.Prevalidated
	compiled *filter.Compiled
	// fp is the table-mode flat compilation of prog: it evaluates a
	// quarantine-exit transition packet (the port is admitted again
	// before the re-inserted filter is visible in the match's table
	// snapshot) with exactly the cost the table's own fallback path
	// would charge.  nil when the program fails table-mode validation,
	// in which case the filter matches nothing — same as in the table.
	fp *filter.FlatProg
	// slot is the port's stable slot in the published decision table,
	// -1 while not resident (no filter bound, quarantined out, or the
	// table not yet built).
	slot int

	// queue is head-indexed: qhead marks the first undelivered packet
	// and dequeues advance it instead of re-slicing, so the backing
	// array's capacity survives and the steady-state receive path
	// allocates nothing.
	queue      []Packet
	qhead      int
	queueLimit int
	maxQueued  int // high-water mark of the input queue
	dropped    uint64

	timeout  time.Duration // 0: block forever; <0: non-blocking
	batchMax int           // ReadBatch upper bound; 0 = unlimited
	copyAll  bool
	stamp    bool
	closed   bool

	matches uint64 // packets accepted (for busy-first reordering)
	instrs  uint64 // filter instruction words interpreted for this port
	reads   uint64 // successful Read calls
	batches uint64 // successful ReadBatch calls
	batched uint64 // packets returned by ReadBatch

	// applyBurst is the coalesced burst that last charged this port's
	// fixed FilterApply setup; wakePending marks the port as already
	// collected for this burst's once-per-port reader wakeup.
	applyBurst  uint64
	wakePending bool

	// lastRxQ is the receive queue that last delivered to this port
	// (-1 before the first delivery); a handoff from a different
	// queue charges the cross-queue XQDeliver penalty.  Unused on a
	// single-queue device.
	lastRxQ int

	// Governor state (gov.go).  govTokens is the CPU token bucket in
	// instruction units, refilled lazily at govRefill; govBound is the
	// bound filter's scaled worst-case price, pre-admission checked
	// against the bucket.  quarUntil/quarPenalty implement the
	// doubling-backoff quarantine; tableActive mirrors the standing
	// baked into the merged decision table.
	govTokens   float64
	govRefill   time.Duration
	govBound    int
	quarUntil   time.Duration
	quarPenalty time.Duration
	tableActive bool
	fuelSpent   uint64 // instruction units charged against the bucket
	quarantines uint64 // times the port entered quarantine
	quarSkips   uint64 // filter evaluations skipped while quarantined

	// Queue-residency accounting: total and count of time delivered
	// packets spent on the input queue.
	qresSum time.Duration
	qresN   uint64

	// ring, when non-nil, is the mapped shared-memory ring (ring.go);
	// the counters below split delivery between the two paths.
	ring        *ring
	reaps       uint64 // successful ReapBatch calls through the ring
	reaped      uint64 // packets returned by ReapBatch
	bytesCopied uint64 // payload bytes moved kernel<->user for this port
	bytesMapped uint64 // payload bytes delivered or sent in place
	descErrors  uint64 // hostile/malformed ring descriptors rejected

	qGauge *trace.Gauge // cached tracer gauge for queue depth

	// spanDropCtrs caches the per-port drop-taxonomy counters
	// ("pf.port<id>.span_drop.<reason>") so steady-state drops do not
	// build counter names.
	spanDropCtrs [trace.NumDropReasons]*trace.Counter

	privileged bool // may bind filters above PrivilegedPriority

	readers  *sim.WaitQ
	watchers []*sim.WaitQ // Select subscribers
}

// DefaultQueueLimit bounds a port's input queue unless configured
// otherwise (§3.3: the user controls "the maximum length of the
// per-port input queue").
const DefaultQueueLimit = 32

// Open opens a new port on the device.  Process context.
func (d *Device) Open(p *sim.Proc) *Port {
	p.Syscall("pf")
	port := &Port{
		dev:         d,
		id:          d.nextID,
		queueLimit:  DefaultQueueLimit,
		readers:     d.host.Sim().NewWaitQ(),
		tableActive: true,
		slot:        -1,
		lastRxQ:     -1,
	}
	if g := d.opt.Gov; g.Enabled {
		// The bucket starts full at open time — rebinding a filter
		// deliberately does not refill it, so a hostile port cannot
		// launder its debt through SetFilter.
		port.govTokens = float64(g.Burst)
		port.govRefill = d.host.Clock().Now()
	}
	d.nextID++
	d.ports = append(d.ports, port)
	d.sortPorts()
	return port
}

// OpenPrivileged opens a port allowed to bind filters at or above the
// device's PrivilegedPriority threshold (§3.2's restricted
// high-priority filters).
func (d *Device) OpenPrivileged(p *sim.Proc) *Port {
	port := d.Open(p)
	port.privileged = true
	return port
}

// SetFilter binds a filter to the port via ioctl; "a new filter can be
// bound at any time, at a cost comparable to that of receiving a
// packet" (§3).  Under EvalFast/EvalCompiled the program is validated
// or compiled here, at bind time, not per packet.
func (port *Port) SetFilter(p *sim.Proc, f filter.Filter) error {
	p.Syscall("pf")
	p.CopyIn("pf", 2+2*len(f.Program))
	p.ConsumeKernel("pf", p.Sim().Costs().Copy(128)) // "comparable to receiving a packet"

	if t := port.dev.opt.PrivilegedPriority; t > 0 && f.Priority >= t && !port.privileged {
		return ErrPriority
	}

	opt := filter.ValidateOptions{Extensions: port.dev.opt.Extensions}
	switch port.dev.opt.Mode {
	case EvalFast:
		pv, err := filter.Prevalidate(f.Program, opt)
		if err != nil {
			return err
		}
		pv.SetEnv(filter.Env{HeaderWords: port.dev.nic.Network().Link().HeaderWords()})
		port.pv = pv
	case EvalCompiled:
		c, err := filter.Compile(f.Program, opt,
			filter.Env{HeaderWords: port.dev.nic.Network().Link().HeaderWords()})
		if err != nil {
			return err
		}
		port.compiled = c
	case EvalTable:
		// The merged table validates on insert; a program that fails
		// table-mode validation matches nothing rather than erroring,
		// exactly as before.  The flat compilation here answers for
		// quarantine-exit transition packets.
		if fp, err := filter.CompileFlat(f.Program, filter.ValidateOptions{}, filter.Env{}); err == nil {
			port.fp = fp
		} else {
			port.fp = nil
		}
	default:
		// The checked interpreter accepts anything and fails
		// per packet, exactly like the original driver.
	}
	// Rebinding patches the old filter out of the published table and
	// the new one in (a quarantined port stays out until forgiven).
	port.dev.tableRemovePort(port)
	port.prog = f.Program.Clone()
	port.priority = f.Priority
	if port.dev.opt.Gov.Enabled {
		port.govBound = govBoundFor(port.dev.opt.Mode, port.prog, opt)
	}
	port.dev.sortPorts()
	if !port.dev.opt.Gov.Enabled || port.tableActive {
		port.dev.tableInsertPort(port)
	}
	return nil
}

// eval applies the port's filter to a frame, returning acceptance and
// the virtual cost in instruction units.  The unit is one *checked*
// interpreter step; the faster §7 evaluation strategies charge
// proportionally less: prevalidation removes the per-instruction
// validity/bounds/stack checks (~40% of the inner loop), and compiled
// filters skip instruction decode entirely (~1/3 the cost) — the
// ratios the real-time benchmarks in bench_test.go measure.
func (port *Port) eval(frame []byte) (bool, int) {
	switch port.dev.opt.Mode {
	case EvalFast:
		r := port.pv.Run(frame)
		return r.Accept, (r.Instrs*3 + 4) / 5
	case EvalCompiled:
		ok := port.compiled.Run(frame)
		return ok, (port.compiled.Info().Instrs + 2) / 3
	default:
		var r filter.Result
		if port.dev.opt.Extensions {
			r = filter.RunExt(port.prog, frame,
				filter.Env{HeaderWords: port.dev.nic.Network().Link().HeaderWords()})
		} else {
			r = filter.Run(port.prog, frame)
		}
		return r.Accept, r.Instrs
	}
}

// SetTimeout sets the blocking-read timeout: 0 blocks indefinitely, a
// negative value makes reads non-blocking (§3.3: "the timeout duration
// for blocking reads (or optionally, immediate return or indefinite
// blocking)").
func (port *Port) SetTimeout(p *sim.Proc, d time.Duration) {
	p.Syscall("pf")
	port.timeout = d
}

// SetQueueLimit sets the maximum per-port input queue length.
func (port *Port) SetQueueLimit(p *sim.Proc, n int) {
	p.Syscall("pf")
	if n < 1 {
		n = 1
	}
	port.queueLimit = n
}

// SetCopyAll requests that packets accepted by this port's filter also
// be submitted to lower-priority filters (§3.2); monitors set it.
func (port *Port) SetCopyAll(p *sim.Proc, on bool) {
	p.Syscall("pf")
	port.copyAll = on
}

// SetStamp enables receive timestamping (§3.3); each stamped packet
// costs the kernel a microtime() call (§7).
func (port *Port) SetStamp(p *sim.Proc, on bool) {
	p.Syscall("pf")
	port.stamp = on
}

// SetBatchMax bounds how many packets one ReadBatch may return; 0
// means all queued packets.
func (port *Port) SetBatchMax(p *sim.Proc, n int) {
	p.Syscall("pf")
	port.batchMax = n
}

// queued returns the live (undelivered) packets in queue order.
func (port *Port) queued() []Packet { return port.queue[port.qhead:] }

// qlen returns the input-queue depth.
func (port *Port) qlen() int { return len(port.queue) - port.qhead }

// popFront consumes n packets from the queue head, clearing consumed
// slots (so delivered frames are not retained by the kernel) and
// recycling the backing array once drained or mostly consumed.
func (port *Port) popFront(n int) {
	for i := port.qhead; i < port.qhead+n; i++ {
		port.queue[i] = Packet{}
	}
	port.qhead += n
	port.dev.queuedTotal -= n
	switch {
	case port.qhead == len(port.queue):
		port.queue = port.queue[:0]
		port.qhead = 0
	case port.qhead >= 32 && 2*port.qhead >= len(port.queue):
		kept := copy(port.queue, port.queue[port.qhead:])
		for i := kept; i < len(port.queue); i++ {
			port.queue[i] = Packet{}
		}
		port.queue = port.queue[:kept]
		port.qhead = 0
	}
}

// enqueue adds a packet to the port queue and wakes readers (kernel
// context).  arrived is when the frame entered the packet-filter input
// path; span is the packet's provenance span.
func (port *Port) enqueue(frame []byte, arrived time.Duration, span uint64) {
	if port.enqueueQuiet(frame, arrived, span) {
		port.wakeReaders()
	}
}

// spanDropCounter returns (caching) the per-port taxonomy counter for
// one drop reason.
func (port *Port) spanDropCounter(tr *trace.Tracer, reason trace.DropReason) *trace.Counter {
	c := port.spanDropCtrs[reason]
	if c == nil {
		c = tr.Counter(port.dev.host.Name(),
			fmt.Sprintf("pf.port%d.span_drop.%s", port.id, reason))
		port.spanDropCtrs[reason] = c
	}
	return c
}

// enqueueQuiet adds a packet to the port queue without waking readers,
// reporting whether it was queued (false: dropped on overflow).  The
// coalesced input path enqueues a whole burst and then wakes each
// port's readers once.
func (port *Port) enqueueQuiet(frame []byte, arrived time.Duration, span uint64) bool {
	h := port.dev.host
	limit := port.queueLimit
	if c := port.dev.queueCap; c > 0 && c < limit {
		limit = c
	}
	r := port.ring
	if port.qlen() >= limit || (r != nil && len(r.free) == 0) {
		// A mapped ring can hold one frame per slot, and slots stay
		// reserved while queued *or* lent out to a reaping process;
		// with none free, overflow drops exactly like a full input
		// queue rather than overwriting a frame still being read.
		reason := trace.DropPortQueue
		if r != nil && len(r.free) == 0 && port.qlen() < limit {
			reason = trace.DropRingSlots
		}
		port.dropped++
		h.Counters.PacketsDropped++
		h.Sim().Counters.PacketsDropped++
		if tr := h.Sim().Tracer(); tr != nil {
			tr.Drop(h.Clock().Now(), h.Name(), "queue")
			if span != 0 {
				port.spanDropCounter(tr, reason).Add(1)
			}
			tr.SpanDrop(span, h.Clock().Now(), h.Name(), reason)
			tr.SpanPort(span, port.id)
		}
		return false
	}
	var slot int
	if r != nil {
		// Deposit the frame in place: the driver writes straight into
		// a free receive slot of the shared segment, so the later reap
		// moves no data.
		frame, slot = r.deposit(frame)
	}
	pkt := Packet{Data: frame, Drops: port.dropped, arrived: arrived, slot: slot, span: span,
		qAt: h.Clock().Now()}
	if port.stamp {
		pkt.Stamp = h.Clock().Now()
	}
	port.queue = append(port.queue, pkt)
	port.dev.queuedTotal++
	if port.qlen() > port.maxQueued {
		port.maxQueued = port.qlen()
	}
	if tr := h.Sim().Tracer(); tr != nil {
		port.depthGauge(tr).Set(int64(port.qlen()))
		tr.Enqueue(h.Clock().Now(), h.Name(), port.id, port.qlen())
	}
	tr := h.Sim().Tracer()
	tr.SpanMark(span, trace.StageQueue, h.Clock().Now())
	tr.SpanPort(span, port.id)
	return true
}

// wakeReaders wakes one blocked reader and every Select watcher.
func (port *Port) wakeReaders() {
	h := port.dev.host
	port.readers.WakeOne(h)
	for _, w := range port.watchers {
		w.WakeOne(h)
	}
}

// depthGauge returns (caching) the tracer gauge for this port's queue
// depth.
func (port *Port) depthGauge(tr *trace.Tracer) *trace.Gauge {
	if port.qGauge == nil {
		port.qGauge = tr.Gauge(port.dev.host.Name(), fmt.Sprintf("pf.port%d.depth", port.id))
	}
	return port.qGauge
}

// Read returns the first queued packet, blocking per the port timeout.
// One system call and one kernel-to-user copy per packet (figure 3-4).
//
// Tie-break: when the read timeout and a packet delivery land on the
// same virtual instant, whichever event was scheduled first wins — the
// timeout was scheduled when the wait began, so a packet arriving via
// the receive path exactly at the deadline loses the race, Read
// returns ErrTimeout, and the packet stays queued for the next read.
// Only an enqueue whose event was scheduled before the wait started
// can beat the timeout at the same tick.  This order is deterministic
// (sim events at equal times run in scheduling order) and is pinned by
// TestReadTimeoutVsSameTickDelivery.
func (port *Port) Read(p *sim.Proc) (Packet, error) {
	if port.closed {
		return Packet{}, ErrClosed
	}
	p.Syscall("pfread")
	if r := port.ring; r != nil {
		r.reclaim()
	}
	for port.qlen() == 0 {
		if port.timeout < 0 {
			return Packet{}, ErrWouldBlock
		}
		if !p.Wait(port.readers, port.timeout) {
			return Packet{}, ErrTimeout
		}
		if port.closed {
			return Packet{}, ErrClosed
		}
	}
	pkt := port.queue[port.qhead]
	port.popFront(1)
	port.qresSum += p.Now() - pkt.qAt
	port.qresN++
	if r := port.ring; r != nil && pkt.slot > 0 {
		// Read copies the frame out of its ring slot; the slot frees
		// immediately.
		r.free = append(r.free, pkt.slot-1)
		pkt.slot = 0
	}
	port.reads++
	port.bytesCopied += uint64(len(pkt.Data))
	p.CopyOut("pfread", len(pkt.Data))
	if tr := p.Sim().Tracer(); tr != nil {
		h := port.dev.host
		now := p.Now()
		tr.PortCopied(h.Name(), len(pkt.Data))
		port.depthGauge(tr).Set(int64(port.qlen()))
		tr.Dequeue(now, h.Name(), port.id, port.qlen(), 1)
		tr.Deliver(now, h.Name(), port.id, now-pkt.arrived)
		tr.SpanDelivered(pkt.span, now, h.Name(), port.id)
	}
	return pkt, nil
}

// ReadBatch returns all queued packets (up to the batch bound) in one
// system call, amortizing its overhead (§3: "The program may ask that
// all pending packets be returned in a batch; this is useful for
// high-volume communications", figure 3-5).  It blocks like Read when
// the queue is empty.
func (port *Port) ReadBatch(p *sim.Proc) ([]Packet, error) {
	return port.drainBatch(p, false)
}

// drainBatch is the shared body of ReadBatch and ReapBatch: identical
// blocking, timeout, batch-bound and drain behavior, differing only in
// how the drained bytes are charged (one kernel-to-user copy vs
// per-descriptor ring handling with the data already in place).  The
// ring/copy equivalence property test pins that the two paths return
// the same packet sequence.
func (port *Port) drainBatch(p *sim.Proc, viaRing bool) ([]Packet, error) {
	if port.closed {
		return nil, ErrClosed
	}
	tag := "pfread"
	if viaRing {
		tag = "pfreap"
	}
	p.Syscall(tag)
	if r := port.ring; r != nil {
		r.reclaim()
	}
	for port.qlen() == 0 {
		if port.timeout < 0 {
			return nil, ErrWouldBlock
		}
		if !p.Wait(port.readers, port.timeout) {
			return nil, ErrTimeout
		}
		if port.closed {
			return nil, ErrClosed
		}
	}
	n := port.qlen()
	if port.batchMax > 0 && n > port.batchMax {
		n = port.batchMax
	}
	batch := make([]Packet, n)
	copy(batch, port.queued()[:n])
	port.popFront(n)
	for i := range batch {
		port.qresSum += p.Now() - batch[i].qAt
	}
	port.qresN += uint64(n)
	// Charge each packet against the ring as it exists *now* — the
	// mapping may have appeared or dissolved while we blocked.  Only
	// frames that actually sit in a live ring slot and leave through
	// ReapBatch are descriptor handovers; everything else (fallback
	// private copies, frames orphaned by an unmap, any ReadBatch
	// drain) crosses the boundary as a copy.
	r := port.ring
	mapped, copied, ringPkts := 0, 0, 0
	for i := range batch {
		pkt := &batch[i]
		switch {
		case viaRing && r != nil && pkt.slot > 0:
			// Handed over in place; the slot is lent until the
			// process's next drain call reclaims it.
			r.lent = append(r.lent, pkt.slot-1)
			mapped += len(pkt.Data)
			ringPkts++
		case r != nil && pkt.slot > 0:
			// Copied out of its slot; the slot frees immediately.
			r.free = append(r.free, pkt.slot-1)
			pkt.slot = 0
			copied += len(pkt.Data)
		default:
			pkt.slot = 0
			copied += len(pkt.Data)
		}
	}
	h := port.dev.host
	tr := p.Sim().Tracer()
	if ringPkts > 0 {
		// The frames already sit in the shared segment; the kernel
		// only validates and hands over the descriptors.
		port.reaps++
		port.reaped += uint64(ringPkts)
		port.bytesMapped += uint64(mapped)
		h.Counters.RingReaps++
		h.Sim().Counters.RingReaps++
		p.ConsumeKernel(tag, time.Duration(ringPkts)*p.Sim().Costs().RingDesc)
		p.Mapped(tag, mapped)
		if tr != nil {
			tr.RingReap(p.Now(), h.Name(), port.id, ringPkts, mapped)
		}
	}
	if ringPkts < n {
		port.batches++
		port.batched += uint64(n - ringPkts)
		port.bytesCopied += uint64(copied)
		// One copy for the whole batch: the win over per-packet reads.
		p.CopyOut(tag, copied)
		if tr != nil {
			tr.PortCopied(h.Name(), copied)
		}
	}
	if tr != nil {
		now := p.Now()
		port.depthGauge(tr).Set(int64(port.qlen()))
		tr.Dequeue(now, h.Name(), port.id, port.qlen(), n)
		for _, pkt := range batch {
			tr.Deliver(now, h.Name(), port.id, now-pkt.arrived)
			tr.SpanDelivered(pkt.span, now, h.Name(), port.id)
		}
	}
	return batch, nil
}

// Poll reports whether a packet is queued, without blocking (the
// cheap half of a 4.3BSD select).
func (port *Port) Poll(p *sim.Proc) bool {
	p.Syscall("pf")
	return port.qlen() > 0
}

// Write transmits a complete frame, including the data-link header;
// "control returns to the user once the packet is queued for
// transmission" (§3).
func (port *Port) Write(p *sim.Proc, frame []byte) error {
	if port.closed {
		return ErrClosed
	}
	p.Syscall("pfsend")
	p.CopyIn("pfsend", len(frame))
	port.bytesCopied += uint64(len(frame))
	if tr := p.Sim().Tracer(); tr != nil {
		tr.PortCopied(port.dev.host.Name(), len(frame))
	}
	p.ConsumeKernel("driver", p.Sim().Costs().DriverSend)
	return port.dev.nic.Transmit(frame)
}

// WriteBatch transmits several complete frames in one system call,
// §7's proposed symmetric optimization: "a write-batching option (to
// send several packets in one system call) might also improve
// performance."  One kernel entry and one user-to-kernel copy cover
// the whole batch; the driver cost is still paid per frame.
func (port *Port) WriteBatch(p *sim.Proc, frames [][]byte) error {
	if port.closed {
		return ErrClosed
	}
	p.Syscall("pfsend")
	total := 0
	for _, f := range frames {
		total += len(f)
	}
	p.CopyIn("pfsend", total)
	port.bytesCopied += uint64(total)
	if tr := p.Sim().Tracer(); tr != nil {
		tr.PortCopied(port.dev.host.Name(), total)
	}
	costs := p.Sim().Costs()
	for _, f := range frames {
		p.ConsumeKernel("driver", costs.DriverSend)
		if err := port.dev.nic.Transmit(f); err != nil {
			return err
		}
	}
	return nil
}

// PortStats is the per-port statistics block reported by Port.Stats
// and Device.PortStats — the §3.3 "count of the number of packets
// lost" generalized to everything the kernel already tracks per port.
// It is fed from the same counters the trace layer reads.
type PortStats struct {
	ID           int    `json:"id"`
	Priority     uint8  `json:"priority"`
	Queued       int    `json:"queued"`        // packets on the input queue now
	MaxQueued    int    `json:"max_queued"`    // input-queue high-water mark
	Dropped      uint64 `json:"dropped"`       // lost to queue overflow
	Matched      uint64 `json:"matched"`       // accepted by this port's filter
	FilterInstrs uint64 `json:"filter_instrs"` // instruction words interpreted
	Reads        uint64 `json:"reads"`         // single-packet reads
	BatchReads   uint64 `json:"batch_reads"`   // ReadBatch calls
	BatchPackets uint64 `json:"batch_packets"` // packets returned by ReadBatch
	RingReaps    uint64 `json:"ring_reaps"`    // ReapBatch calls through a mapped ring
	ReapPackets  uint64 `json:"reap_packets"`  // packets returned by ReapBatch
	BytesCopied  uint64 `json:"bytes_copied"`  // payload bytes moved kernel<->user
	BytesMapped  uint64 `json:"bytes_mapped"`  // payload bytes delivered/sent in place
	DescErrors   uint64 `json:"desc_errors"`   // malformed ring descriptors rejected

	// Governor and residency accounting (gov.go); the governed fields
	// stay zero on an ungoverned device.
	FuelSpent       uint64        `json:"fuel_spent,omitempty"`       // instruction units charged
	Quarantines     uint64        `json:"quarantines,omitempty"`      // penalty windows entered
	QuarantineSkips uint64        `json:"quarantine_skips,omitempty"` // evaluations skipped under quarantine
	AvgResidency    time.Duration `json:"avg_residency_ns,omitempty"` // mean queue residency of delivered packets
}

// Stats reports the port's statistics block (kernel bookkeeping only;
// no system call is charged — the device status read PortStats is the
// user-visible ioctl).
func (port *Port) Stats() PortStats {
	var res time.Duration
	if port.qresN > 0 {
		res = port.qresSum / time.Duration(port.qresN)
	}
	return PortStats{
		ID:           port.id,
		Priority:     port.priority,
		Queued:       port.qlen(),
		MaxQueued:    port.maxQueued,
		Dropped:      port.dropped,
		Matched:      port.matches,
		FilterInstrs: port.instrs,
		Reads:        port.reads,
		BatchReads:   port.batches,
		BatchPackets: port.batched,
		RingReaps:    port.reaps,
		ReapPackets:  port.reaped,
		BytesCopied:  port.bytesCopied,
		BytesMapped:  port.bytesMapped,
		DescErrors:   port.descErrors,

		FuelSpent:       port.fuelSpent,
		Quarantines:     port.quarantines,
		QuarantineSkips: port.quarSkips,
		AvgResidency:    res,
	}
}

// PortStats returns the statistics blocks of every open port in port-id
// order — the status-read extension of §3.3's lost-packet counts.
// Process context; charges an ioctl.
func (d *Device) PortStats(p *sim.Proc) []PortStats {
	p.Syscall("pf")
	stats := make([]PortStats, 0, len(d.ports))
	for _, port := range d.ports {
		stats = append(stats, port.Stats())
	}
	sort.Slice(stats, func(i, j int) bool { return stats[i].ID < stats[j].ID })
	return stats
}

// Matches returns how many packets this port's filter has accepted.
// Host returns the host this port's device is attached to.
func (port *Port) Host() *sim.Host { return port.dev.host }

func (port *Port) Matches() uint64 { return port.matches }

// Priority returns the bound filter's priority.
func (port *Port) Priority() uint8 { return port.priority }

// Close releases the port; blocked readers fail with ErrClosed.
func (port *Port) Close(p *sim.Proc) {
	if port.closed {
		return
	}
	p.Syscall("pf")
	port.closed = true
	port.dev.queuedTotal -= port.qlen()
	// Packets still queued will never be read; their spans die typed.
	tr := port.dev.host.Sim().Tracer()
	now := port.dev.host.Clock().Now()
	for _, pkt := range port.queued() {
		tr.SpanDrop(pkt.span, now, port.dev.host.Name(), trace.DropPortClose)
	}
	port.detachRing()
	port.readers.WakeAll(port.dev.host)
	for i, q := range port.dev.ports {
		if q == port {
			port.dev.ports = append(port.dev.ports[:i], port.dev.ports[i+1:]...)
			break
		}
	}
	port.dev.tableRemovePort(port)
}

// Select blocks until one of the ports has a queued packet — or has
// been closed under the caller, which also makes it "ready" so the
// next Read surfaces ErrClosed instead of Select blocking forever on a
// dead port (a host crash closes every port).  Returns the ready
// index, or -1 on timeout.  It models the 4.3BSD select mechanism the
// paper cites for non-blocking network I/O (§3).
func Select(p *sim.Proc, ports []*Port, timeout time.Duration) int {
	p.Syscall("pf")
	check := func() int {
		for i, port := range ports {
			if port.closed || port.qlen() > 0 {
				return i
			}
		}
		return -1
	}
	if i := check(); i >= 0 {
		return i
	}
	q := p.Sim().NewWaitQ()
	for _, port := range ports {
		port.watchers = append(port.watchers, q)
	}
	defer func() {
		for _, port := range ports {
			for i, w := range port.watchers {
				if w == q {
					port.watchers = append(port.watchers[:i], port.watchers[i+1:]...)
					break
				}
			}
		}
	}()
	deadline := p.Now() + timeout
	for {
		remain := time.Duration(0)
		if timeout > 0 {
			remain = deadline - p.Now()
			if remain <= 0 {
				return -1
			}
		}
		if !p.Wait(q, remain) {
			return -1
		}
		if i := check(); i >= 0 {
			return i
		}
	}
}
