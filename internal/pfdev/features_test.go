package pfdev

import (
	"testing"
	"time"

	"repro/internal/ethersim"
	"repro/internal/filter"
	"repro/internal/sim"
	"repro/internal/vtime"
)

func TestWriteBatch(t *testing.T) {
	r := newRig(t, Options{})
	var got int
	r.s.Spawn(r.hb, "recv", func(p *sim.Proc) {
		port := r.db.Open(p)
		port.SetFilter(p, socketFilter(10, 35))
		port.SetTimeout(p, 50*time.Millisecond)
		for {
			if _, err := port.Read(p); err != nil {
				return
			}
			got++
		}
	})
	var sys, copies uint64
	r.s.Spawn(r.ha, "send", func(p *sim.Proc) {
		port := r.da.Open(p)
		p.Sleep(5 * time.Millisecond)
		frames := make([][]byte, 6)
		for i := range frames {
			frames[i] = pupTo(2, 1, byte(i+1), 35)
		}
		before := r.ha.Counters
		if err := port.WriteBatch(p, frames); err != nil {
			t.Error(err)
		}
		d := r.ha.Counters.Sub(before)
		sys, copies = d.Syscalls, d.Copies
	})
	r.s.Run(0)
	if got != 6 {
		t.Fatalf("delivered %d of 6", got)
	}
	if sys != 1 || copies != 1 {
		t.Fatalf("batched write used %d syscalls, %d copies; want 1/1", sys, copies)
	}
}

func TestWriteBatchErrors(t *testing.T) {
	r := newRig(t, Options{})
	r.s.Spawn(r.ha, "send", func(p *sim.Proc) {
		port := r.da.Open(p)
		huge := make([]byte, ethersim.Ether3Mb.MaxFrame()+1)
		if err := port.WriteBatch(p, [][]byte{huge}); err == nil {
			t.Error("oversized frame accepted in batch")
		}
		port.Close(p)
		if err := port.WriteBatch(p, nil); err != ErrClosed {
			t.Errorf("err = %v, want ErrClosed", err)
		}
	})
	r.s.Run(0)
}

func TestPrivilegedPriority(t *testing.T) {
	s := sim.New(vtime.DefaultCosts())
	net := ethersim.New(s, ethersim.Ether3Mb)
	h := s.NewHost("h")
	dev := Attach(net.Attach(h, 1), nil, Options{PrivilegedPriority: 100})
	s.Spawn(h, "p", func(p *sim.Proc) {
		normal := dev.Open(p)
		if err := normal.SetFilter(p, socketFilter(150, 1)); err != ErrPriority {
			t.Errorf("unprivileged high-priority bind: err = %v, want ErrPriority", err)
		}
		if err := normal.SetFilter(p, socketFilter(99, 1)); err != nil {
			t.Errorf("unprivileged low-priority bind failed: %v", err)
		}
		root := dev.OpenPrivileged(p)
		if err := root.SetFilter(p, socketFilter(200, 2)); err != nil {
			t.Errorf("privileged bind failed: %v", err)
		}
	})
	s.Run(0)
}

func TestPrivilegedPriorityDisabledByDefault(t *testing.T) {
	r := newRig(t, Options{}) // threshold zero: everything allowed
	r.s.Spawn(r.ha, "p", func(p *sim.Proc) {
		port := r.da.Open(p)
		if err := port.SetFilter(p, socketFilter(255, 1)); err != nil {
			t.Errorf("priority 255 rejected with no threshold: %v", err)
		}
	})
	r.s.Run(0)
}

// TestEvalModeDeliveryEquivalence: whatever evaluation strategy the
// device uses, the same packets reach the same ports.
func TestEvalModeDeliveryEquivalence(t *testing.T) {
	type key struct{ port, pkt int }
	run := func(mode EvalMode) map[key]bool {
		got := map[key]bool{}
		s := sim.New(vtime.DefaultCosts())
		net := ethersim.New(s, ethersim.Ether3Mb)
		ha, hb := s.NewHost("a"), s.NewHost("b")
		na := net.Attach(ha, 1)
		db := Attach(net.Attach(hb, 2), nil, Options{Mode: mode})
		filters := []filter.Filter{
			socketFilter(10, 35),
			socketFilter(10, 36),
			filter.Fig38PupTypeRange(),               // range test: not table-compatible
			{Priority: 1, Program: filter.Program{}}, // catch-all
		}
		for i, f := range filters {
			i, f := i, f
			s.Spawn(hb, "port", func(p *sim.Proc) {
				port := db.Open(p)
				if err := port.SetFilter(p, f); err != nil {
					t.Errorf("mode %d: %v", mode, err)
					return
				}
				port.SetTimeout(p, 100*time.Millisecond)
				for {
					pkt, err := port.Read(p)
					if err != nil {
						return
					}
					got[key{i, int(pkt.Data[7])}] = true // PupType byte tags the packet
				}
			})
		}
		s.Spawn(ha, "src", func(p *sim.Proc) {
			p.Sleep(20 * time.Millisecond)
			cases := []struct {
				typ  byte
				sock uint32
			}{
				{1, 35}, {2, 36}, {50, 99}, {120, 99}, {3, 35},
			}
			for _, c := range cases {
				na.Transmit(pupTo(2, 1, c.typ, c.sock))
				p.Sleep(4 * time.Millisecond)
			}
		})
		s.Run(0)
		return got
	}
	want := run(EvalChecked)
	if len(want) == 0 {
		t.Fatal("no deliveries in baseline")
	}
	for _, mode := range []EvalMode{EvalFast, EvalCompiled, EvalTable} {
		got := run(mode)
		if len(got) != len(want) {
			t.Fatalf("mode %d: %d deliveries vs %d", mode, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("mode %d: missing delivery %+v", mode, k)
			}
		}
	}
}
