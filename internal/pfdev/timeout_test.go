package pfdev

import (
	"testing"
	"time"

	"repro/internal/ethersim"
	"repro/internal/sim"
	"repro/internal/vtime"
)

// TestReadTimeoutVsSameTickDelivery pins the tie-break documented on
// Port.Read: when a packet's enqueue event and a blocked read's
// deadline land on the same virtual tick, the winner is whichever
// event was scheduled first.  An enqueue scheduled before the wait
// started delivers the packet; an enqueue scheduled after it loses,
// Read returns ErrTimeout, and the packet stays queued for the next
// read.  Zero costs make the wait start at exactly the spawn time, so
// both cases hit the deadline tick dead on.
func TestReadTimeoutVsSameTickDelivery(t *testing.T) {
	const deadline = time.Millisecond
	frame := pupTo(2, 1, 1, 35)

	setup := func() (*sim.Sim, *Port) {
		s := sim.New(vtime.Costs{})
		net := ethersim.New(s, ethersim.Ether3Mb)
		dev := Attach(net.Attach(s.NewHost("b"), 2), nil, Options{})
		var port *Port
		s.Spawn(dev.Host(), "open", func(p *sim.Proc) {
			port = dev.Open(p)
			if err := port.SetFilter(p, socketFilter(10, 35)); err != nil {
				t.Fatal(err)
			}
		})
		s.Run(0)
		return s, port
	}

	t.Run("enqueue scheduled before the wait wins", func(t *testing.T) {
		s, port := setup()
		// Scheduled now, before the reader exists: first in line at
		// the deadline tick.
		s.At(deadline, func() { port.enqueue(frame, s.Now(), 0) })
		var err error
		var at time.Duration
		s.Spawn(port.dev.Host(), "read", func(p *sim.Proc) {
			port.SetTimeout(p, deadline)
			_, err = port.Read(p)
			at = p.Now()
		})
		s.Run(0)
		if err != nil {
			t.Fatalf("Read = %v, want the packet (enqueue event predates the wait)", err)
		}
		if at != deadline {
			t.Fatalf("delivered at %v, want exactly %v", at, deadline)
		}
	})

	t.Run("timeout beats an enqueue scheduled after the wait", func(t *testing.T) {
		s, port := setup()
		// Inserted from a later event, so at the deadline tick it
		// runs after the timeout that the wait registered at t=0.
		s.At(deadline/2, func() {
			s.At(deadline, func() { port.enqueue(frame, s.Now(), 0) })
		})
		var first, second error
		var firstAt, secondAt time.Duration
		s.Spawn(port.dev.Host(), "read", func(p *sim.Proc) {
			port.SetTimeout(p, deadline)
			_, first = port.Read(p)
			firstAt = p.Now()
			_, second = port.Read(p)
			secondAt = p.Now()
		})
		s.Run(0)
		if first != ErrTimeout {
			t.Fatalf("first Read = %v, want ErrTimeout (timeout event predates the enqueue)", first)
		}
		if firstAt != deadline {
			t.Fatalf("timed out at %v, want exactly %v", firstAt, deadline)
		}
		if second != nil {
			t.Fatalf("second Read = %v, want the queued packet", second)
		}
		if secondAt != deadline {
			t.Fatalf("packet delivered at %v, want exactly %v (it was already queued)", secondAt, deadline)
		}
	})
}
