// Ring/copy equivalence property, in an external test package because
// it drives the chaos variant through internal/faults, which itself
// imports pfdev.
package pfdev_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/ethersim"
	"repro/internal/faults"
	"repro/internal/filter"
	"repro/internal/parsim"
	"repro/internal/pfdev"
	"repro/internal/shm"
	"repro/internal/sim"
	"repro/internal/vtime"
)

// equivFrame builds a Pup frame to dst whose payload carries seq and
// rng-derived filler, sized at least the 22-byte Pup header.
func equivFrame(rng *rand.Rand, seq int) []byte {
	size := 22 + rng.Intn(180)
	payload := make([]byte, size)
	payload[3] = byte(seq)
	payload[10], payload[11], payload[12], payload[13] = 0, 0, 0, 35
	for i := 22; i < size; i++ {
		payload[i] = byte(rng.Intn(256))
	}
	return ethersim.Ether3Mb.Encode(2, 1, ethersim.EtherTypePup3Mb, payload)
}

// deliveredSeq runs one two-host sim: a sender paces n rng-sized
// frames at rng-chosen gaps, a receiver drains its port in batches —
// through a mapped ring when ring is set, the copying ReadBatch
// otherwise — and the delivered frames come back in order, rendered as
// hex.  rate > 0 injects seeded wire chaos (drops, corruption,
// duplicates, reordering delays).  Everything that varies is derived
// from seed, so the same (seed, n, rate) must reproduce the same
// sequence regardless of the delivery path: costs differ, bytes do not.
func deliveredSeq(t *testing.T, ring bool, seed uint64, n int, rate float64) []string {
	t.Helper()
	s := sim.New(vtime.DefaultCosts())
	net := ethersim.New(s, ethersim.Ether3Mb)
	ha, hb := s.NewHost("a"), s.NewHost("b")
	na, nb := net.Attach(ha, 1), net.Attach(hb, 2)
	da := pfdev.Attach(na, nil, pfdev.Options{})
	db := pfdev.Attach(nb, nil, pfdev.Options{})
	if rate > 0 {
		eng := faults.New(s, seed, faults.Plan{Name: "equiv", Wire: faults.Uniform(rate)})
		eng.AttachWire(net)
	}

	var got []string
	slots := 2*n + 4 // generous: queue limits identical on both paths
	s.Spawn(hb, "recv", func(p *sim.Proc) {
		port := db.Open(p)
		port.SetFilter(p, filter.DstSocketFilter(10, 35))
		port.SetQueueLimit(p, slots)
		port.SetTimeout(p, 10*time.Millisecond)
		if ring {
			reg := shm.NewRegistry(hb)
			seg, err := reg.Map(p, "equiv", port.RingLayoutSize(slots))
			if err != nil {
				t.Errorf("Map: %v", err)
				return
			}
			if err := port.MapRing(p, seg, slots); err != nil {
				t.Errorf("MapRing: %v", err)
				return
			}
		}
		// Drain until two consecutive timeouts: a delivery landing on
		// the same tick as a timeout stays queued, and the retry picks
		// it up, so a cost-induced tick shift cannot drop the tail.
		idle := 0
		for idle < 2 {
			batch, err := port.ReapBatch(p)
			if err != nil {
				idle++
				continue
			}
			idle = 0
			for _, pkt := range batch {
				got = append(got, fmt.Sprintf("%x", pkt.Data))
			}
		}
	})
	s.Spawn(ha, "send", func(p *sim.Proc) {
		rng := rand.New(rand.NewSource(int64(seed)))
		port := da.Open(p)
		p.Sleep(2 * time.Millisecond) // let the receiver finish setup
		for i := 0; i < n; i++ {
			if err := port.Write(p, equivFrame(rng, i)); err != nil {
				t.Errorf("Write %d: %v", i, err)
				return
			}
			p.Sleep(time.Duration(50+rng.Intn(1500)) * time.Microsecond)
		}
	})
	s.Run(0)
	return got
}

// TestRingCopyEquivalence is the property the ring path is built
// around: at equal packet counts the mapped ring delivers exactly the
// packet sequence the copying path delivers — same frames, same order,
// same drops — on a clean wire and under seeded chaos.  The trial
// seeds are pre-drawn from a pinned source and each (seed, rate) cell
// builds its own pair of simulation universes on a parsim worker.
func TestRingCopyEquivalence(t *testing.T) {
	check := func(rate float64) func(seed uint64) bool {
		return func(seed uint64) bool {
			n := 4 + int(seed%13)
			viaCopy := deliveredSeq(t, false, seed, n, rate)
			viaRing := deliveredSeq(t, true, seed, n, rate)
			if !reflect.DeepEqual(viaCopy, viaRing) {
				t.Logf("seed %d n %d rate %g:\ncopy %d pkts %v\nring %d pkts %v",
					seed, n, rate, len(viaCopy), viaCopy, len(viaRing), viaRing)
				return false
			}
			if rate == 0 && len(viaCopy) != n {
				t.Logf("seed %d: clean wire delivered %d of %d", seed, len(viaCopy), n)
				return false
			}
			return true
		}
	}
	const trials = 8
	rng := rand.New(rand.NewSource(0x51EED))
	type cell struct {
		name string
		rate float64
		prop func(seed uint64) bool
		seed uint64
	}
	var cells []cell
	for _, c := range []struct {
		name string
		rate float64
	}{{"clean wire", 0}, {"chaos wire", 0.25}} {
		prop := check(c.rate)
		for i := 0; i < trials; i++ {
			cells = append(cells, cell{c.name, c.rate, prop, rng.Uint64()})
		}
	}
	ok := parsim.Map(len(cells), 0, func(i int) bool {
		return cells[i].prop(cells[i].seed)
	})
	for i, pass := range ok {
		if !pass {
			t.Errorf("%s: property falsified for seed %#x", cells[i].name, cells[i].seed)
		}
	}
}

// TestRingChaosSeedPinned runs one named chaos seed both ways and also
// pins run-to-run determinism: the same configuration twice is
// bit-identical.
func TestRingChaosSeedPinned(t *testing.T) {
	const seed, n, rate = 0xC0FFEE, 16, 0.30
	viaCopy := deliveredSeq(t, false, seed, n, rate)
	viaRing := deliveredSeq(t, true, seed, n, rate)
	if !reflect.DeepEqual(viaCopy, viaRing) {
		t.Errorf("chaos seed diverged: copy %d pkts, ring %d pkts", len(viaCopy), len(viaRing))
	}
	again := deliveredSeq(t, true, seed, n, rate)
	if !reflect.DeepEqual(viaRing, again) {
		t.Errorf("two identical ring runs diverged")
	}
	if len(viaRing) == 0 {
		t.Errorf("chaos run delivered nothing; rate too hostile for the property to mean anything")
	}
}
