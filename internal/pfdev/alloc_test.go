package pfdev

import (
	"testing"

	"repro/internal/ethersim"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// allocWorld builds the smallest steady-state receive universe: one
// host, one device, one bound port with a deep queue, no tracer.
func allocWorld(t testing.TB) (*sim.Sim, *Device, *Port) {
	s := sim.New(vtime.DefaultCosts())
	net := ethersim.New(s, ethersim.Ether3Mb)
	ha := s.NewHost("a")
	na := net.Attach(ha, 1)
	d := Attach(na, nil, Options{})
	var port *Port
	s.Spawn(ha, "ctl", func(p *sim.Proc) {
		port = d.Open(p)
		if err := port.SetFilter(p, socketFilter(10, 35)); err != nil {
			t.Error(err)
		}
		port.SetQueueLimit(p, 1<<16)
	})
	s.Run(0)
	if port == nil {
		t.Fatal("port setup did not run")
	}
	return s, d, port
}

// TestReceivePathAllocationFree pins the whole per-frame kernel
// receive path — device input, filter match, pending-delivery queue,
// kernel CPU scheduling and port enqueue — at zero heap allocations
// per packet once pools and backing arrays are warm.  This is the
// assertion behind the sweep speedups: a trial's hot loop must not
// pressure the collector.
func TestReceivePathAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc pins only run without -race")
	}
	s, d, port := allocWorld(t)
	match := pupTo(1, 2, 1, 35)
	miss := pupTo(1, 2, 1, 99)
	deliver := func(frame []byte) {
		d.input(frame)
		s.Run(0)
	}
	// Warm every free list this path touches: the sim event pool, the
	// host's cpuReq pool, the device's pending-delivery queue and the
	// port queue's backing array.
	for i := 0; i < 64; i++ {
		deliver(match)
	}
	for port.qlen() > 0 {
		port.popFront(1)
	}
	deliver(miss)

	if a := testing.AllocsPerRun(200, func() {
		deliver(match)
		if port.qlen() != 1 {
			t.Fatalf("frame not delivered (qlen %d)", port.qlen())
		}
		port.popFront(1)
	}); a != 0 {
		t.Errorf("matched receive path allocates %.1f/packet, want 0", a)
	}
	if a := testing.AllocsPerRun(200, func() {
		deliver(miss)
		if port.qlen() != 0 {
			t.Fatalf("non-matching frame delivered")
		}
	}); a != 0 {
		t.Errorf("dropped receive path allocates %.1f/packet, want 0", a)
	}
}

// TestReceivePathAllocationFreeWithSpans re-pins the same path with a
// metrics tracer attached and span tracking at sampling 1: origin
// stamp, every stage mark, the port enqueue, user-delivery termination
// with its histogram observations, and the typed-drop path must all
// stay at zero heap allocations per packet.  The flight recorder is a
// preallocated ring and every taxonomy counter name is interned, so
// always-on provenance costs no garbage.
func TestReceivePathAllocationFreeWithSpans(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc pins only run without -race")
	}
	s, d, port := allocWorld(t)
	tr := trace.New()
	sp := tr.EnableSpans(trace.SpanConfig{Ring: 256})
	s.SetTracer(tr)
	match := pupTo(1, 2, 1, 35)
	miss := pupTo(1, 2, 1, 99)

	deliverMatch := func() {
		span := tr.SpanOrigin(s.Now(), "a")
		d.inputSpanned(match, span)
		s.Run(0)
		if port.qlen() != 1 {
			t.Fatalf("frame not delivered (qlen %d)", port.qlen())
		}
		tr.SpanDelivered(port.queued()[0].Span(), s.Now(), "a", port.id)
		port.popFront(1)
	}
	deliverMiss := func() {
		span := tr.SpanOrigin(s.Now(), "a")
		d.inputSpanned(miss, span)
		s.Run(0)
		if port.qlen() != 0 {
			t.Fatalf("non-matching frame delivered")
		}
	}
	// Warm pools, metric map entries and the span ring.
	for i := 0; i < 64; i++ {
		deliverMatch()
		deliverMiss()
	}

	if a := testing.AllocsPerRun(200, deliverMatch); a != 0 {
		t.Errorf("span-tracked delivery allocates %.1f/packet, want 0", a)
	}
	if a := testing.AllocsPerRun(200, deliverMiss); a != 0 {
		t.Errorf("span-tracked drop path allocates %.1f/packet, want 0", a)
	}
	if sp.Live() != 0 {
		t.Fatalf("Live = %d: every packet must have terminated", sp.Live())
	}
	if sp.Created != sp.DeliveredUser+sp.TotalDrops() {
		t.Fatalf("conservation broken: created=%d user=%d drops=%d",
			sp.Created, sp.DeliveredUser, sp.TotalDrops())
	}
}

// BenchmarkReceivePath measures the real (wall-clock) cost of one
// simulated frame delivery end to end, allocation-counted.
func BenchmarkReceivePath(b *testing.B) {
	s, d, port := allocWorld(b)
	frame := pupTo(1, 2, 1, 35)
	for i := 0; i < 64; i++ {
		d.input(frame)
		s.Run(0)
	}
	for port.qlen() > 0 {
		port.popFront(1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.input(frame)
		s.Run(0)
		port.popFront(1)
	}
}
