package pfdev

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/shm"
	"repro/internal/sim"
	"repro/internal/trace"
)

// spanRig is the two-host fixture with span tracking at sampling 1.
func spanRig(t *testing.T, opt Options) (*rig, *trace.Spans) {
	t.Helper()
	r := newRig(t, opt)
	tr := trace.New()
	sp := tr.EnableSpans(trace.SpanConfig{})
	r.s.SetTracer(tr)
	return r, sp
}

// TestSpanDeliveredEndToEnd: one matching frame crosses the wire and
// terminates as a user delivery carrying every stage boundary.
func TestSpanDeliveredEndToEnd(t *testing.T) {
	r, sp := spanRig(t, Options{})
	r.s.Spawn(r.hb, "recv", func(p *sim.Proc) {
		port := r.db.Open(p)
		if err := port.SetFilter(p, socketFilter(10, 35)); err != nil {
			t.Error(err)
			return
		}
		if _, err := port.Read(p); err != nil {
			t.Error(err)
		}
	})
	r.s.Spawn(r.ha, "send", func(p *sim.Proc) {
		port := r.da.Open(p)
		p.Sleep(time.Millisecond)
		if err := port.Write(p, pupTo(2, 1, 1, 35)); err != nil {
			t.Error(err)
		}
	})
	r.s.Run(0)

	if sp.Created != 1 || sp.DeliveredUser != 1 || sp.Live() != 0 {
		t.Fatalf("created=%d delivered=%d live=%d", sp.Created, sp.DeliveredUser, sp.Live())
	}
	recs := sp.RecordsSnapshot()
	rec := recs[0]
	if rec.Origin != "a" || rec.Final != "b" || rec.Term != trace.TermUser {
		t.Fatalf("record = %+v", rec)
	}
	var last time.Duration
	for _, st := range []trace.Stage{
		trace.StageOrigin, trace.StageWire, trace.StageNIC,
		trace.StageDemux, trace.StageFilter, trace.StageQueue, trace.StageRead,
	} {
		when, ok := rec.MarkAt(st)
		if !ok {
			t.Fatalf("stage %v missing from %+v", st, rec)
		}
		if when < last {
			t.Fatalf("stage %v at %v precedes previous boundary %v", st, when, last)
		}
		last = when
	}
}

// TestSpanDropNoMatch: a frame no filter wants dies typed, and the
// taxonomy counter on the receiving host records it.
func TestSpanDropNoMatch(t *testing.T) {
	r, sp := spanRig(t, Options{})
	r.s.Spawn(r.hb, "recv", func(p *sim.Proc) {
		port := r.db.Open(p)
		port.SetFilter(p, socketFilter(10, 35))
		port.SetTimeout(p, 10*time.Millisecond)
		port.Read(p) // times out; the frame went to nobody
	})
	r.s.Spawn(r.ha, "send", func(p *sim.Proc) {
		port := r.da.Open(p)
		p.Sleep(time.Millisecond)
		port.Write(p, pupTo(2, 1, 1, 99)) // socket nobody filters for
	})
	r.s.Run(0)

	if sp.Drops[trace.DropNoMatch] != 1 {
		t.Fatalf("drops = %v", sp.Drops)
	}
	if got := r.s.Tracer().Counter("b", "span.drop.nomatch").Value(); got != 1 {
		t.Fatalf("span.drop.nomatch on b = %d", got)
	}
	if sp.Live() != 0 {
		t.Fatalf("Live = %d, want 0", sp.Live())
	}
}

// TestSpanDropPortClose: packets still queued when their port closes
// die as port_close, keeping conservation exact.
func TestSpanDropPortClose(t *testing.T) {
	r, sp := spanRig(t, Options{})
	r.s.Spawn(r.hb, "recv", func(p *sim.Proc) {
		port := r.db.Open(p)
		port.SetFilter(p, socketFilter(10, 35))
		p.Sleep(20 * time.Millisecond) // let frames queue, never read
		port.Close(p)
	})
	r.s.Spawn(r.ha, "send", func(p *sim.Proc) {
		port := r.da.Open(p)
		p.Sleep(time.Millisecond)
		for i := 0; i < 3; i++ {
			port.Write(p, pupTo(2, 1, 1, 35))
		}
	})
	r.s.Run(0)

	if sp.Drops[trace.DropPortClose] != 3 {
		t.Fatalf("drops = %v", sp.Drops)
	}
	if sp.Live() != 0 {
		t.Fatalf("Live = %d: conservation broken across port close", sp.Live())
	}
}

// TestSpanDropCrash: frames caught inside the kernel by a host crash —
// queued on a port or pending delivery — die as crash drops.
func TestSpanDropCrash(t *testing.T) {
	r, sp := spanRig(t, Options{})
	r.s.Spawn(r.hb, "recv", func(p *sim.Proc) {
		port := r.db.Open(p)
		port.SetFilter(p, socketFilter(10, 35))
		p.Sleep(time.Hour) // never reads
	})
	r.s.Spawn(r.ha, "send", func(p *sim.Proc) {
		port := r.da.Open(p)
		p.Sleep(time.Millisecond)
		for i := 0; i < 3; i++ {
			port.Write(p, pupTo(2, 1, 1, 35))
		}
	})
	r.s.At(10*time.Millisecond, func() { r.hb.Crash() })
	r.s.Run(30 * time.Millisecond)

	if sp.Drops[trace.DropCrash] != 3 {
		t.Fatalf("drops = %v", sp.Drops)
	}
	if sp.Live() != 0 {
		t.Fatalf("Live = %d after crash", sp.Live())
	}
}

// TestSpanDropRingSlots: with a mapped ring whose free list is
// exhausted, overflow is typed ring_slots — distinct from a plain
// queue overflow — and the per-port taxonomy counter records it.
func TestSpanDropRingSlots(t *testing.T) {
	r, sp := spanRig(t, Options{})
	const slots = 4
	var portID int
	r.s.Spawn(r.hb, "recv", func(p *sim.Proc) {
		port := r.db.Open(p)
		portID = port.Stats().ID
		port.SetFilter(p, socketFilter(10, 35))
		port.SetQueueLimit(p, 64) // roomy queue: only the ring can saturate
		reg := shm.NewRegistry(r.hb)
		seg, err := reg.Map(p, "spans-ring", port.RingLayoutSize(slots))
		if err != nil {
			t.Error(err)
			return
		}
		if err := port.MapRing(p, seg, slots); err != nil {
			t.Error(err)
			return
		}
		p.Sleep(time.Hour) // never reaps
	})
	r.s.Spawn(r.ha, "send", func(p *sim.Proc) {
		port := r.da.Open(p)
		p.Sleep(10 * time.Millisecond) // let the receiver finish mapping
		for i := 0; i < slots+2; i++ {
			port.Write(p, pupTo(2, 1, 1, 35))
		}
	})
	r.s.Run(50 * time.Millisecond)

	if sp.Drops[trace.DropRingSlots] != 2 {
		t.Fatalf("drops = %v created=%d user=%d live=%d", sp.Drops, sp.Created, sp.DeliveredUser, sp.Live())
	}
	if sp.Drops[trace.DropPortQueue] != 0 {
		t.Fatalf("ring overflow miscounted as port_queue: %v", sp.Drops)
	}
	name := fmt.Sprintf("pf.port%d.span_drop.ring_slots", portID)
	if got := r.s.Tracer().Counter("b", name).Value(); got != 2 {
		t.Fatalf("%s = %d, want 2", name, got)
	}
}
