//go:build race

package pfdev

// raceEnabled gates allocation assertions: the race detector's
// instrumentation allocates, so AllocsPerRun checks are meaningless
// under -race.
const raceEnabled = true
