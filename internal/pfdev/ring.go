package pfdev

import (
	"errors"

	"repro/internal/shm"
	"repro/internal/sim"
)

// This file gives a packet-filter port a ring mode over a
// shared-memory segment (internal/shm): the driver deposits accepted
// frames directly into the segment's receive slots, the process reaps
// whole batches with one system call that moves descriptors instead of
// data (ReapBatch), and the symmetric transmit ring sends frames the
// process composed in the segment (RingTransmit).  With no segment
// mapped, every port behaves byte-for-byte like the copying §3 device.
//
// This is the counterfactual §2 wishes for — "this would be easier in
// a system that supported shared memory between the kernel and user
// processes" — built so the §6 receive tables can be re-run with the
// copies elided and the difference measured.

// Ring errors.
var (
	ErrNoRing    = errors.New("pfdev: no ring mapped on port")
	ErrRingHost  = errors.New("pfdev: segment belongs to another host's kernel")
	ErrRingSize  = errors.New("pfdev: segment too small for ring layout")
	ErrRingSlots = errors.New("pfdev: ring needs at least one slot")
	ErrBadDesc   = errors.New("pfdev: malformed ring descriptor")
)

// ring is the kernel-side state of a mapped ring port.
//
// Receive slots move through three states: free (the driver may
// deposit an arriving frame), queued (the frame sits on the port input
// queue), and lent (the frame was handed to the process by ReapBatch
// and the process may still be reading the view).  Lent slots are
// reclaimed at the process's next drain syscall on the port — asking
// for more packets implies the previous batch has been consumed — so
// the driver can never overwrite a frame the process might still read.
// A reaped view is therefore valid exactly until the next
// Read/ReadBatch/ReapBatch call on the same port.
type ring struct {
	seg      *shm.Segment
	slots    int   // receive descriptor slots
	slotSize int   // bytes per receive slot (the link maximum frame)
	free     []int // slots available for the driver to deposit into
	lent     []int // slots reaped by the process, reclaimed at its next drain
	txBase   int   // start of the transmit arena within the segment
	txOff    int   // rotating deposit offset within the arena
}

// reclaim returns lent slots to the free list.  Called at the top of
// every drain syscall: the process asking for another batch implies it
// is done with the views handed out by the previous one.
func (r *ring) reclaim() {
	r.free = append(r.free, r.lent...)
	r.lent = r.lent[:0]
}

// RingLayoutSize returns the minimum segment size for a ring of slots
// receive slots on the port's link: the receive slots plus a transmit
// arena of equal size.
func (port *Port) RingLayoutSize(slots int) int {
	slotSize := port.dev.nic.Network().Link().MaxFrame()
	return 2 * slots * slotSize
}

// MapRing attaches a shared-memory segment to the port as a
// descriptor ring via ioctl.  The segment must be registered with the
// same host's kernel, must not be attached elsewhere (a port can never
// alias another port's segment), and must be large enough for slots
// receive slots plus the transmit arena.  Process context.
func (port *Port) MapRing(p *sim.Proc, seg *shm.Segment, slots int) error {
	p.Syscall("pf")
	if port.closed {
		return ErrClosed
	}
	if slots < 1 {
		return ErrRingSlots
	}
	if seg.Host() != port.dev.host {
		return ErrRingHost
	}
	slotSize := port.dev.nic.Network().Link().MaxFrame()
	need := 2 * slots * slotSize
	if seg.Size() < need {
		return ErrRingSize
	}
	if err := seg.Attach(port); err != nil {
		return err
	}
	if old := port.ring; old != nil && old.seg != seg {
		// Remapping over a live ring: release the previous segment's
		// attachment now, or it stays attached to this port forever
		// and every other consumer gets ErrBusy.
		old.seg.Detach(port)
	}
	r := &ring{
		seg:      seg,
		slots:    slots,
		slotSize: slotSize,
		free:     make([]int, 0, slots),
		txBase:   slots * slotSize,
	}
	for i := 0; i < slots; i++ {
		r.free = append(r.free, i)
	}
	port.ring = r
	// Packets already queued (private kernel copies, or views into a
	// previous ring's segment) migrate into this ring's slots now so
	// the first reap's accounting is honest and nothing queued still
	// references an older mapping.  Frames beyond the slot count stay
	// private copies (deposit falls back when no slot is free).
	q := port.queued()
	for i := range q {
		q[i].Data, q[i].slot = r.deposit(q[i].Data)
	}
	return nil
}

// UnmapRing detaches the ring; the port falls back to the copying
// read/write path.  Process context.
func (port *Port) UnmapRing(p *sim.Proc) {
	p.Syscall("pf")
	port.detachRing()
}

// detachRing releases the segment attachment (kernel context; also
// called from Close and the crash path).
func (port *Port) detachRing() {
	if port.ring != nil {
		port.ring.seg.Detach(port)
		port.ring = nil
	}
}

// RingMapped reports whether a ring is currently attached.
func (port *Port) RingMapped() bool { return port.ring != nil }

// deposit writes a received frame into a free receive slot and returns
// the in-segment view the queued Packet will carry plus the 1-based
// slot handle (0 when the frame had to become a private kernel copy:
// oversized for a slot, no slot free, or the segment was unmapped
// under the ring).  Only free slots are used — queued and lent slots
// are never overwritten, so a frame the process may still read cannot
// be corrupted by a later arrival.
func (r *ring) deposit(frame []byte) ([]byte, int) {
	if len(frame) > r.slotSize || !r.seg.Mapped() || len(r.free) == 0 {
		// Oversize frames (the link's MaxFrame lied) must not bleed
		// into the next slot; keep the kernel alive with a private
		// copy, charged as such when drained.
		return append([]byte(nil), frame...), 0
	}
	slot := r.free[0]
	r.free = r.free[1:]
	view, err := r.seg.Slice(uint32(slot*r.slotSize), uint32(len(frame)))
	if err != nil {
		r.free = append(r.free, slot)
		return append([]byte(nil), frame...), 0
	}
	copy(view, frame)
	r.seg.Stats.BytesIn += uint64(len(frame))
	return view, slot + 1
}

// ReapBatch drains the port queue exactly like ReadBatch — same
// blocking, timeout and batch bound — but delivers through the mapped
// ring: the kernel validates and hands over one descriptor per packet
// (Costs.RingDesc each) and the frame bytes, already deposited in the
// shared segment, cross no boundary.  Without a mapped ring it is
// ReadBatch, byte for byte.
//
// The returned Data views stay valid until the caller's next drain
// call (Read/ReadBatch/ReapBatch) on this port: their slots are lent
// out until then and the driver deposits new arrivals only into free
// slots, dropping (as queue overflow) when none remain.
func (port *Port) ReapBatch(p *sim.Proc) ([]Packet, error) {
	return port.drainBatch(p, port.ring != nil)
}

// SegmentUnmapped implements shm.Consumer: the owning process unmapped
// the segment under the kernel, so the ring dissolves and the port
// falls back to the copying path.  Frames already queued keep their
// views (now private memory as far as delivery accounting goes) and
// are charged as copies when drained.
func (port *Port) SegmentUnmapped(seg *shm.Segment) {
	if port.ring == nil || port.ring.seg != seg {
		return
	}
	port.ring = nil
	q := port.queued()
	for i := range q {
		q[i].slot = 0
	}
}

// RingTransmit sends the frames named by a raw descriptor block, the
// §7 write-batching idea with the copy elided: one system call, no
// user-to-kernel data copy, one driver transmission per descriptor.
// The block is hostile user input: it is parsed and bounds-checked
// against the segment and the link maximum frame, and the first bad
// descriptor aborts the call with ErrBadDesc (frames before it are
// already on the wire, as with a partial writev).  The kernel snapshots
// each frame out of the segment at transmit time, so a process
// rewriting its arena mid-call cannot corrupt queued frames.
func (port *Port) RingTransmit(p *sim.Proc, raw []byte) error {
	if port.closed {
		return ErrClosed
	}
	p.Syscall("pfsend")
	r := port.ring
	if r == nil {
		return ErrNoRing
	}
	descs, err := shm.DecodeDescs(raw)
	if err != nil {
		port.descErrors++
		return errors.Join(ErrBadDesc, err)
	}
	costs := p.Sim().Costs()
	maxFrame := port.dev.nic.Network().Link().MaxFrame()
	for _, d := range descs {
		p.ConsumeKernel("pfsend", costs.RingDesc)
		if err := d.CheckBounds(r.seg.Size(), maxFrame); err != nil {
			port.descErrors++
			return errors.Join(ErrBadDesc, err)
		}
		view, err := r.seg.Slice(d.Off, d.Len)
		if err != nil {
			port.descErrors++
			return errors.Join(ErrBadDesc, err)
		}
		frame := append([]byte(nil), view...)
		port.bytesMapped += uint64(len(frame))
		r.seg.Stats.BytesOut += uint64(len(frame))
		p.Mapped("pfsend", len(frame))
		p.ConsumeKernel("driver", costs.DriverSend)
		if err := port.dev.nic.Transmit(frame); err != nil {
			return err
		}
	}
	return nil
}

// WriteRing lays the given frames into the transmit arena, builds
// their descriptor block and submits it with one RingTransmit call —
// the convenience path protocols use.  Frames that cannot fit the
// arena in one batch return ErrRingSize.
func (port *Port) WriteRing(p *sim.Proc, frames [][]byte) error {
	r := port.ring
	if r == nil {
		return ErrNoRing
	}
	arena := r.seg.Size() - r.txBase
	total := 0
	for _, f := range frames {
		total += len(f)
	}
	if total > arena {
		return ErrRingSize
	}
	if r.txOff+total > arena {
		r.txOff = 0 // wrap: the whole batch fits from the arena start
	}
	var raw []byte
	off := r.txBase + r.txOff
	buf := r.seg.Bytes()
	for _, f := range frames {
		copy(buf[off:], f)
		raw = shm.Desc{Off: uint32(off), Len: uint32(len(f))}.Encode(raw)
		off += len(f)
	}
	r.txOff = off - r.txBase
	return port.RingTransmit(p, raw)
}
