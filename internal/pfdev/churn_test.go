package pfdev

import (
	"testing"
	"time"

	"repro/internal/filter"
	"repro/internal/sim"
)

// orSocketFilter builds an expensive non-extractable OR filter (socket
// s1 or s2) padded with redundant conjunctions to raise its bound —
// the shape that lands on the table's linear-fallback path.
func orSocketFilter(prio uint8, s1, s2 uint32) filter.Filter {
	b := filter.NewBuilder()
	b.WordEQ(7, uint16(s1>>16)).WordEQ(8, uint16(s1)).And()
	b.WordEQ(7, uint16(s2>>16)).WordEQ(8, uint16(s2)).And()
	b.Or()
	for i := 0; i < 12; i++ {
		b.WordEQ(8, uint16(s1)).WordEQ(8, uint16(s1)).Op(filter.EQ).And()
	}
	return filter.Filter{Priority: prio, Program: b.MustProgram()}
}

// TestQuarantineTableLinearEquivalence is the satellite-1 regression:
// a high-priority port shadows an expensive fallback filter, so under
// the linear scan the fallback is never reached and never charged.
// The old table path pre-charged every active port's bound on every
// packet regardless of reach, so the shadowed port burned its whole
// budget on frames it never saw, got quarantined, and dropped the few
// socket-36 frames only it matched.  The v2 gov-at-reach scan must
// make table mode exactly equivalent to linear: same quarantines, same
// skips, same deliveries.
func TestQuarantineTableLinearEquivalence(t *testing.T) {
	type res struct {
		quar, skips uint64
		s36         int
	}
	run := func(mode EvalMode) res {
		r := newRig(t, Options{Mode: mode, Gov: tightGov()})
		var hi, lo *Port
		var loGot int
		r.s.Spawn(r.hb, "setup", func(p *sim.Proc) {
			hi = r.db.Open(p)
			if err := hi.SetFilter(p, socketFilter(20, 35)); err != nil {
				t.Fatal(err)
			}
			hi.SetQueueLimit(p, 1<<14)
			lo = r.db.Open(p)
			if err := lo.SetFilter(p, orSocketFilter(10, 35, 36)); err != nil {
				t.Fatal(err)
			}
			lo.SetQueueLimit(p, 1<<14)
			lo.SetTimeout(p, time.Millisecond)
		})
		r.s.Run(0)
		r.s.Spawn(r.ha, "send", func(p *sim.Proc) {
			send := r.da.Open(p)
			for i := 0; i < 200; i++ {
				if err := send.Write(p, pupTo(2, 1, 1, 35)); err != nil {
					t.Fatal(err)
				}
				p.Sleep(200 * time.Microsecond)
				if i%10 == 9 {
					if err := send.Write(p, pupTo(2, 1, 1, 36)); err != nil {
						t.Fatal(err)
					}
					p.Sleep(200 * time.Microsecond)
				}
			}
		})
		r.s.Spawn(r.hb, "drain", func(p *sim.Proc) {
			idle := 0
			for idle < 50 {
				if _, err := lo.Read(p); err != nil {
					idle++
				} else {
					idle = 0
					loGot++
				}
			}
		})
		r.s.Run(0)
		return res{quar: lo.quarantines, skips: lo.quarSkips, s36: loGot}
	}
	lin := run(EvalChecked)
	tab := run(EvalTable)
	if lin.s36 == 0 {
		t.Fatal("linear baseline delivered no socket-36 frames; the scenario is broken")
	}
	if tab.s36 != lin.s36 {
		t.Errorf("table delivered %d socket-36 frames, linear %d", tab.s36, lin.s36)
	}
	if tab.quar != lin.quar || tab.skips != lin.skips {
		t.Errorf("table quarantines=%d skips=%d, linear quarantines=%d skips=%d",
			tab.quar, tab.skips, lin.quar, lin.skips)
	}
}

// TestQuarantineExitPatchesTable pins the cool-down forgiveness
// contract in table mode: entering quarantine patches the port out of
// the published table; the packet that finds the port's window expired
// patches it back in and is itself delivered (forgiveness must not
// cost a packet); and both transitions are incremental patches, not
// full rebuilds.
func TestQuarantineExitPatchesTable(t *testing.T) {
	r := newRig(t, Options{Mode: EvalTable, Gov: tightGov()})
	var port *Port
	r.s.Spawn(r.hb, "setup", func(p *sim.Proc) {
		port = r.db.Open(p)
		if err := port.SetFilter(p, socketFilter(10, 35)); err != nil {
			t.Fatal(err)
		}
		port.SetQueueLimit(p, 1<<10)
	})
	r.s.Run(0)
	probe := pupTo(2, 1, 1, 35)

	// Prime the table and confirm delivery.
	if got, _ := r.db.tableMatch(probe, nil); !sameIDs(portIDs(got), []int{port.id}) {
		t.Fatalf("primed table delivered to %v, want %v", portIDs(got), []int{port.id})
	}
	builds, patches := r.db.TableBuilds, r.db.TablePatches

	// Starve the bucket: the next reach quarantines the port and must
	// patch it out of the published table in place.
	port.govTokens = 0
	if got, _ := r.db.tableMatch(probe, nil); len(got) != 0 {
		t.Fatalf("starved port still delivered to %v", portIDs(got))
	}
	if port.quarantines != 1 || port.tableActive {
		t.Fatalf("quarantines=%d tableActive=%v, want 1/false", port.quarantines, port.tableActive)
	}
	if port.slot != -1 {
		t.Errorf("quarantined port still owns table slot %d", port.slot)
	}
	if r.db.TablePatches != patches+1 || r.db.TableBuilds != builds {
		t.Errorf("quarantine entry: builds %d->%d patches %d->%d, want an incremental patch",
			builds, r.db.TableBuilds, patches, r.db.TablePatches)
	}

	// While the window holds, matches skip without further patching.
	if got, _ := r.db.tableMatch(probe, nil); len(got) != 0 {
		t.Fatalf("quarantined port delivered to %v", portIDs(got))
	}
	if r.db.TablePatches != patches+1 {
		t.Errorf("in-quarantine match patched the table (%d -> %d)", patches+1, r.db.TablePatches)
	}

	// Sleep past the quarantine window (and long enough to refill the
	// bucket).  The first packet after expiry is the forgiveness
	// transition: it must be delivered and must patch the port back in.
	r.s.Spawn(r.hb, "wait", func(p *sim.Proc) { p.Sleep(30 * time.Millisecond) })
	r.s.Run(0)
	got, _ := r.db.tableMatch(probe, nil)
	if !sameIDs(portIDs(got), []int{port.id}) {
		t.Fatalf("forgiveness packet delivered to %v, want %v", portIDs(got), []int{port.id})
	}
	if !port.tableActive || port.slot < 0 {
		t.Errorf("after exit: tableActive=%v slot=%d, want true/>=0", port.tableActive, port.slot)
	}
	if r.db.TablePatches != patches+2 || r.db.TableBuilds != builds {
		t.Errorf("quarantine exit: builds %d->%d patches %d->%d, want one more incremental patch",
			builds, r.db.TableBuilds, patches+1, r.db.TablePatches)
	}

	// Steady state after re-insertion: the patched table answers alone.
	if got, _ := r.db.tableMatch(probe, nil); !sameIDs(portIDs(got), []int{port.id}) {
		t.Fatalf("post-exit steady match delivered to %v", portIDs(got))
	}
}

// TestReorderDeferredToBurstBoundary is the satellite-2 regression: a
// §3.2 busy-first reorder that comes due in the middle of a coalesced
// burst must not flip the scan order under the burst's feet — every
// frame of one burst observes a single order, and the reorder lands at
// the burst boundary.  The old code reordered mid-burst, so an
// equal-priority tie switched winners partway through a burst.
func TestReorderDeferredToBurstBoundary(t *testing.T) {
	for _, mode := range []EvalMode{EvalChecked, EvalTable} {
		name := "linear"
		if mode == EvalTable {
			name = "table"
		}
		t.Run(name, func(t *testing.T) {
			r := newRig(t, Options{
				Mode:           mode,
				Reorder:        true,
				ReorderEvery:   4,
				CoalesceBudget: 8,
				CoalesceDelay:  2 * time.Millisecond,
			})
			var pA, pB *Port
			r.s.Spawn(r.hb, "setup", func(p *sim.Proc) {
				pA = r.db.Open(p)
				pA.SetFilter(p, socketFilter(10, 35))
				pA.SetQueueLimit(p, 1<<10)
				pB = r.db.Open(p)
				pB.SetFilter(p, socketFilter(10, 35))
				pB.SetQueueLimit(p, 1<<10)
			})
			r.s.Run(0)

			// Make pB the busier port so the reorder due at pktSeen=4 —
			// mid-burst — would promote it over pA.
			pB.matches = 100
			r.s.Spawn(r.ha, "send", func(p *sim.Proc) {
				p.Sleep(time.Millisecond)
				for i := 0; i < 8; i++ {
					// Raw back-to-back transmits so all 8 frames
					// coalesce into one burst.
					r.da.NIC().Transmit(pupTo(2, 1, 1, 35))
				}
			})
			r.s.Run(0)
			// NAPI shape: the first frame flushes alone (the
			// "interrupt"), frames 2-8 coalesce into one 7-frame burst
			// that spans both reorder triggers (pktSeen 4 and 8).
			if r.hb.Counters.Bursts != 2 || r.hb.Counters.CoalescedFrames != 8 {
				t.Fatalf("burst shape: bursts=%d coalesced=%d, want 2/8",
					r.hb.Counters.Bursts, r.hb.Counters.CoalescedFrames)
			}
			aGot, bGot := pA.matches, pB.matches-100
			if aGot+bGot != 8 {
				t.Fatalf("burst delivered %d+%d frames, want 8", aGot, bGot)
			}
			if aGot != 8 {
				t.Errorf("scan order flipped mid-burst: %d frames to pA, %d to pB; all 8 belong to the pre-burst winner", aGot, bGot)
			}

			// The reorder was deferred, not dropped: the first frame
			// after the burst boundary goes to the busier port.
			r.s.Spawn(r.ha, "send2", func(p *sim.Proc) {
				p.Sleep(10 * time.Millisecond)
				r.da.NIC().Transmit(pupTo(2, 1, 1, 35))
			})
			r.s.Run(0)
			if pB.matches-100 != bGot+1 {
				t.Errorf("post-burst frame went to %d/%d; the deferred reorder never applied",
					pA.matches, pB.matches-100)
			}
		})
	}
}
