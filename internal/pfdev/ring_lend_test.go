package pfdev

import (
	"errors"
	"testing"
	"time"

	"repro/internal/shm"
	"repro/internal/sim"
)

// TestReapedSlotsNotRedeposited pins the slot lend protocol: frames
// handed out by ReapBatch keep their slots reserved until the next
// drain call, so a burst arriving while the process is still consuming
// the batch drops at the port instead of silently overwriting the
// views the process holds.
func TestReapedSlotsNotRedeposited(t *testing.T) {
	r := newRig(t, Options{})
	var stats PortStats
	r.s.Spawn(r.hb, "recv", func(p *sim.Proc) {
		port := r.db.Open(p)
		port.SetFilter(p, socketFilter(10, 35))
		port.SetTimeout(p, 50*time.Millisecond)
		mapTestRing(t, p, port, 2)

		p.Sleep(10 * time.Millisecond) // let frames 1 and 2 queue up
		batch, err := port.ReapBatch(p)
		if err != nil || len(batch) != 2 {
			t.Errorf("first reap = (%d, %v), want 2 packets", len(batch), err)
			return
		}
		// Consume the batch slowly: frames 3..5 arrive while both ring
		// slots are lent out, so they must be dropped, not deposited
		// over the views we are still holding.
		p.Sleep(20 * time.Millisecond)
		for i, pkt := range batch {
			if got := pkt.Data[7]; got != byte(i+1) {
				t.Errorf("held view %d corrupted: pup type %d, want %d", i, got, i+1)
			}
		}
		// The next reap reclaims the lent slots; frame 6 lands in one.
		batch, err = port.ReapBatch(p)
		if err != nil || len(batch) != 1 || batch[0].Data[7] != 6 {
			t.Errorf("second reap = (%d, %v), want exactly frame 6", len(batch), err)
		}
		stats = port.Stats()
	})
	r.s.Spawn(r.ha, "send", func(p *sim.Proc) {
		port := r.da.Open(p)
		p.Sleep(time.Millisecond)
		port.Write(p, pupTo(2, 1, 1, 35))
		port.Write(p, pupTo(2, 1, 2, 35))
		p.Sleep(19 * time.Millisecond) // receiver is mid-batch now
		port.Write(p, pupTo(2, 1, 3, 35))
		port.Write(p, pupTo(2, 1, 4, 35))
		port.Write(p, pupTo(2, 1, 5, 35))
		p.Sleep(20 * time.Millisecond) // receiver has reaped again
		port.Write(p, pupTo(2, 1, 6, 35))
	})
	r.s.Run(0)

	if stats.Dropped != 3 {
		t.Errorf("Dropped = %d, want 3 (the burst against lent slots)", stats.Dropped)
	}
	if stats.BytesCopied != 0 {
		t.Errorf("BytesCopied = %d, want 0", stats.BytesCopied)
	}
}

// TestRemapDetachesOldSegment pins that MapRing over a live ring
// releases the previous segment's attachment instead of leaking it.
func TestRemapDetachesOldSegment(t *testing.T) {
	r := newRig(t, Options{})
	r.s.Spawn(r.hb, "proc", func(p *sim.Proc) {
		port := r.db.Open(p)
		reg := shm.NewRegistry(r.hb)
		segA, err := reg.Map(p, "a", port.RingLayoutSize(4))
		if err != nil {
			t.Errorf("Map a: %v", err)
			return
		}
		segB, err := reg.Map(p, "b", port.RingLayoutSize(4))
		if err != nil {
			t.Errorf("Map b: %v", err)
			return
		}
		if err := port.MapRing(p, segA, 4); err != nil {
			t.Errorf("MapRing a: %v", err)
		}
		if err := port.MapRing(p, segB, 4); err != nil {
			t.Errorf("remap to b: %v", err)
		}
		if segA.Attached() != nil {
			t.Error("remap leaked the old segment's attachment")
		}
		// Another port can use the released segment immediately.
		other := r.db.Open(p)
		if err := other.MapRing(p, segA, 4); err != nil {
			t.Errorf("MapRing on released segment: %v", err)
		}
		// Remapping the same segment (e.g. to resize the slot count)
		// keeps it attached.
		if err := port.MapRing(p, segB, 2); err != nil {
			t.Errorf("same-segment remap: %v", err)
		}
		if segB.Attached() != port {
			t.Error("same-segment remap lost the attachment")
		}
	})
	r.s.Run(0)
}

// TestUnmapMidBlockFallsBackToCopies pins the shm.Consumer
// notification and the post-block accounting: when the process unmaps
// the segment while a reader is blocked in ReapBatch, the ring
// dissolves, later arrivals are private copies, and the drain charges
// them as copies — not as mapped ring traffic.
func TestUnmapMidBlockFallsBackToCopies(t *testing.T) {
	r := newRig(t, Options{})
	var port *Port
	var seg *shm.Segment
	var stats PortStats
	frameLen := len(pupTo(2, 1, 1, 35))
	r.s.Spawn(r.hb, "recv", func(p *sim.Proc) {
		port = r.db.Open(p)
		port.SetFilter(p, socketFilter(10, 35))
		port.SetTimeout(p, 50*time.Millisecond)
		seg = mapTestRing(t, p, port, 4)
		batch, err := port.ReapBatch(p) // blocks; the unmap happens under us
		if err != nil || len(batch) != 1 {
			t.Errorf("ReapBatch = (%d, %v), want 1 packet", len(batch), err)
			return
		}
		stats = port.Stats()
	})
	r.s.Spawn(r.hb, "unmapper", func(p *sim.Proc) {
		p.Sleep(5 * time.Millisecond)
		seg.Unmap(p)
		if port.RingMapped() {
			t.Error("Unmap left the port ring mapped")
		}
		if err := port.RingTransmit(p, shm.Desc{Off: 0, Len: 8}.Encode(nil)); !errors.Is(err, ErrNoRing) {
			t.Errorf("RingTransmit after unmap = %v, want ErrNoRing", err)
		}
	})
	r.s.Spawn(r.ha, "send", func(p *sim.Proc) {
		port := r.da.Open(p)
		p.Sleep(10 * time.Millisecond) // after the unmap
		port.Write(p, pupTo(2, 1, 1, 35))
	})
	r.s.Run(0)

	if stats.BytesMapped != 0 || stats.RingReaps != 0 {
		t.Errorf("unmapped ring still counted mapped traffic: %+v", stats)
	}
	if stats.BytesCopied != uint64(frameLen) {
		t.Errorf("BytesCopied = %d, want %d", stats.BytesCopied, frameLen)
	}
	if stats.DescErrors != 0 {
		t.Errorf("DescErrors = %d, want 0 (unmap is not a hostile descriptor)", stats.DescErrors)
	}
}

// TestOversizeFrameStaysPrivate pins the deposit guard: a frame longer
// than a slot becomes a private kernel copy in every slot position —
// it never bleeds into the next slot's bytes and never consumes a free
// slot.
func TestOversizeFrameStaysPrivate(t *testing.T) {
	r := newRig(t, Options{})
	r.s.Spawn(r.hb, "proc", func(p *sim.Proc) {
		port := r.db.Open(p)
		seg := mapTestRing(t, p, port, 4)
		ring := port.ring
		oversize := make([]byte, ring.slotSize+1)
		for i := range oversize {
			oversize[i] = 0xAB
		}
		freeBefore := len(ring.free)
		data, slot := ring.deposit(oversize)
		if slot != 0 {
			t.Errorf("oversize deposit claimed slot %d, want private copy", slot-1)
		}
		if len(ring.free) != freeBefore {
			t.Errorf("oversize deposit consumed a free slot: %d -> %d", freeBefore, len(ring.free))
		}
		if len(data) != len(oversize) || &data[0] == &seg.Bytes()[0] {
			t.Error("oversize deposit did not return a private copy")
		}
		for i, b := range seg.Bytes()[:2*ring.slotSize] {
			if b != 0 {
				t.Errorf("oversize deposit leaked into the segment at byte %d", i)
				break
			}
		}
	})
	r.s.Run(0)
}
