package pfdev

import (
	"testing"
	"time"

	"repro/internal/filter"
	"repro/internal/sim"
)

// portIDs extracts the port-id sequence of a match result.
func portIDs(ports []*Port) []int {
	ids := make([]int, len(ports))
	for i, p := range ports {
		ids[i] = p.id
	}
	return ids
}

func sameIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestEqualPriorityTieDelivery pins the documented §3.2 delivery rule
// in both evaluation paths: a non-copy-all accept ends the scan (later
// filters, even at the same priority, do not see the packet; the first
// accepting port in scan order wins the tie), while a copy-all accept
// lets the packet continue to every later filter.
func TestEqualPriorityTieDelivery(t *testing.T) {
	r := newRig(t, Options{})
	var pA, pB, pC *Port
	r.s.Spawn(r.hb, "setup", func(p *sim.Proc) {
		pA = r.db.Open(p)
		pA.SetFilter(p, socketFilter(10, 35))
		pB = r.db.Open(p)
		pB.SetFilter(p, socketFilter(10, 35))
		pC = r.db.Open(p)
		pC.SetFilter(p, socketFilter(5, 35))
	})
	r.s.Run(0)
	probe := pupTo(2, 1, 1, 35)

	check := func(stage string, want []int) {
		t.Helper()
		lin, _ := r.db.linearMatch(probe, nil)
		tab, _ := r.db.tableMatch(probe, nil)
		if !sameIDs(portIDs(lin), want) {
			t.Errorf("%s: linearMatch delivered to %v, want %v", stage, portIDs(lin), want)
		}
		if !sameIDs(portIDs(tab), portIDs(lin)) {
			t.Errorf("%s: tableMatch delivered to %v, linear to %v", stage, portIDs(tab), portIDs(lin))
		}
	}

	// All non-copy-all at priorities 10,10,5: only the first tied
	// accepting port receives the packet.
	check("no copy-all", []int{pA.id})

	// First port copy-all: the packet continues to its equal-priority
	// peer, whose non-copy-all accept then stops the scan before the
	// lower-priority port.
	pA.copyAll = true
	r.db.table = nil
	check("A copy-all", []int{pA.id, pB.id})

	// Both tied ports copy-all: the packet falls through to the
	// lower-priority filter too.
	pB.copyAll = true
	r.db.table = nil
	check("A+B copy-all", []int{pA.id, pB.id, pC.id})
}

// TestReorderKeepsTableValid pins the v2 contract that replaced the
// old rebuild-on-reorder rule: busy-first reordering (§3.2) permutes
// equal-priority ports, and because the device — not the table —
// drives the scan order, the published table stays valid (same
// pointer, zero rebuild work) while equal-priority ties immediately
// resolve in the new order, identically to the linear scan.
func TestReorderKeepsTableValid(t *testing.T) {
	r := newRig(t, Options{Reorder: true, ReorderEvery: 4})
	var pA, pB *Port
	r.s.Spawn(r.hb, "setup", func(p *sim.Proc) {
		pA = r.db.Open(p)
		pA.SetFilter(p, socketFilter(10, 35))
		pB = r.db.Open(p)
		pB.SetFilter(p, socketFilter(10, 35))
	})
	r.s.Run(0)
	probe := pupTo(2, 1, 1, 35)

	// Prime the table in the original open order: the tie goes to pA.
	if tab, _ := r.db.tableMatch(probe, nil); !sameIDs(portIDs(tab), []int{pA.id}) {
		t.Fatalf("pre-reorder table delivered to %v, want %v", portIDs(tab), []int{pA.id})
	}

	// Make pB the busier port and reorder: the scan order is now
	// [pB, pA].  The table must survive untouched — no rebuild, no
	// patch — yet ties follow the new order.
	prev := r.db.table
	builds, patches, work := r.db.TableBuilds, r.db.TablePatches, r.db.TableWork()
	pB.matches = 100
	pA.matches = 1
	r.db.reorder()
	if r.db.table != prev {
		t.Error("reorder replaced the decision table; scan order should not live in it")
	}
	lin, _ := r.db.linearMatch(probe, nil)
	tab, _ := r.db.tableMatch(probe, nil)
	if !sameIDs(portIDs(lin), []int{pB.id}) {
		t.Errorf("post-reorder linear tie went to %v, want busy port %v", portIDs(lin), []int{pB.id})
	}
	if !sameIDs(portIDs(tab), portIDs(lin)) {
		t.Errorf("post-reorder tableMatch delivered to %v, linear to %v", portIDs(tab), portIDs(lin))
	}
	if r.db.TableBuilds != builds || r.db.TablePatches != patches || r.db.TableWork() != work {
		t.Errorf("reorder charged table work: builds %d->%d patches %d->%d work %d->%d",
			builds, r.db.TableBuilds, patches, r.db.TablePatches, work, r.db.TableWork())
	}
}

// TestTableMatchAttribution is the regression test for table-mode cost
// accounting: the decision-tree walk charges its real path depth (not
// a flat 4) and the work is attributed to the accepting ports, so
// per-port FilterInstrs statistics are non-zero in EvalTable mode and
// sum to the host counter.
func TestTableMatchAttribution(t *testing.T) {
	r := newRig(t, Options{Mode: EvalTable})
	var tree, fallback *Port
	r.s.Spawn(r.hb, "setup", func(p *sim.Proc) {
		tree = r.db.Open(p)
		tree.SetFilter(p, socketFilter(10, 35))
		tree.SetCopyAll(p, true)
		// OR is outside the decision-table shape, so this port takes
		// the linear-fallback path inside the merged match.
		fallback = r.db.Open(p)
		fallback.SetFilter(p, filter.Filter{
			Priority: 5,
			Program:  filter.NewBuilder().PushOne().PushOne().Or().MustProgram(),
		})
	})
	r.s.Spawn(r.ha, "send", func(p *sim.Proc) {
		port := r.da.Open(p)
		port.SetFilter(p, socketFilter(10, 99))
		p.Sleep(time.Millisecond)
		for i := 0; i < 5; i++ {
			port.Write(p, pupTo(2, 1, 1, 35))
		}
	})
	r.s.Run(0)

	ts, fs := tree.Stats(), fallback.Stats()
	if ts.Matched != 5 || fs.Matched != 5 {
		t.Fatalf("matched = %d/%d, want 5/5", ts.Matched, fs.Matched)
	}
	if ts.FilterInstrs == 0 {
		t.Error("tree-matched port has zero FilterInstrs in table mode")
	}
	if fs.FilterInstrs == 0 {
		t.Error("fallback port has zero FilterInstrs in table mode")
	}
	if got, want := r.hb.Counters.FilterInstrs, ts.FilterInstrs+fs.FilterInstrs; got != want {
		t.Errorf("host FilterInstrs = %d, want the per-port sum %d", got, want)
	}
}
