// Package pfdev implements the packet filter pseudodevice of §3-§4:
// a kernel-resident demultiplexer layered above a network interface
// driver.  User processes open ports, bind filter programs with
// priorities, and read/write complete data-link frames; the device
// applies the filters of every port to each received packet in order
// of decreasing priority and queues the packet on the first port whose
// filter accepts it (figure 4-1), optionally letting it fall through
// to lower-priority filters as well.
//
// The device runs inside the sim kernel: filter evaluation, queueing
// and timestamping consume virtual kernel CPU on the host, and reads,
// writes and ioctls by processes charge system-call and copy costs, so
// every number the paper's §6 measures is observable.
package pfdev

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/ethersim"
	"repro/internal/filter"
	"repro/internal/sim"
	"repro/internal/trace"
)

// EvalMode selects how the device evaluates filter programs; the modes
// trace the paper's implementation (§4) and its §7 improvement
// proposals, and the ablation benchmarks compare them.
type EvalMode int

const (
	// EvalChecked is the production interpreter with full
	// per-instruction checking (§4).
	EvalChecked EvalMode = iota
	// EvalFast pre-validates programs at bind time and skips the
	// per-instruction checks (§7, "all these tests can be performed
	// ahead of time").
	EvalFast
	// EvalCompiled compiles programs to native closures at bind
	// time (§7, "compiling filters into machine code").
	EvalCompiled
	// EvalTable merges all bound filters into one decision table
	// (§7, "the best possible performance").  Virtual cost is
	// charged per decision-tree edge rather than per instruction.
	EvalTable
)

// KernelProtocol lets a kernel-resident protocol stack (package inet)
// claim frames before the packet filter sees them, matching the
// paper's deployment: "The packet filter is called from the network
// interface drivers upon receipt of packets not destined for
// kernel-resident protocols."
type KernelProtocol interface {
	// Claim returns true if the kernel stack consumed the frame.
	Claim(frame []byte) bool
}

// Chain combines kernel protocols: the first to claim a frame wins.
// Figure 3-3's coexistence — kernel IP plus kernel VMTP plus the
// packet filter — is a two-element chain.
func Chain(protos ...KernelProtocol) KernelProtocol {
	return chain(protos)
}

type chain []KernelProtocol

func (c chain) Claim(frame []byte) bool {
	for _, kp := range c {
		if kp != nil && kp.Claim(frame) {
			return true
		}
	}
	return false
}

// Options configures a Device.
type Options struct {
	Mode EvalMode
	// Reorder enables the §3.2 optimization: "the interpreter may
	// occasionally reorder such filters to place the busier ones
	// first" among equal-priority filters.
	Reorder bool
	// ReorderEvery is the packet interval between reorder passes
	// (default 64).
	ReorderEvery int
	// SeeAll delivers every frame to the packet filter even if a
	// kernel-resident protocol claimed it, so monitors can watch
	// kernel traffic too.
	SeeAll bool
	// Extensions permits the §7 extended instructions in bound
	// programs.
	Extensions bool
	// PrivilegedPriority, when non-zero, restricts filters at or
	// above that priority to ports opened with OpenPrivileged —
	// the security mechanism §3.2 describes: "An earlier version of
	// the packet filter did provide some security by restricting
	// the use of high-priority filters to certain users, allowing
	// these users first rights to all packets."  (The paper notes
	// it went unused; it is here for completeness.)
	PrivilegedPriority uint8
	// CoalesceBudget, when > 1, enables NAPI-style interrupt
	// coalescing on the interface: up to this many back-to-back
	// frames are delivered per kernel entry, with the fixed
	// driver/filter/packet-filter setup charged once per burst and
	// blocked readers woken once per burst.  0 or 1 leaves the
	// per-frame path byte-for-byte as it was.
	CoalesceBudget int
	// CoalesceDelay is the interrupt-moderation timer: after a
	// receive poll completes, the interface holds further frames up
	// to this much virtual time hoping to fill another burst.  0
	// means pure poll-mode batching — bursts form only from frames
	// that arrive while a previous burst is being serviced, adding
	// no latency.
	CoalesceDelay time.Duration
	// Gov configures the resource governor (gov.go): per-port CPU
	// token buckets with quarantine, and overload admission control
	// at demux entry.  The zero value disables it and leaves every
	// receive path byte-identical to the ungoverned device.
	Gov GovConfig
	// FullRebuild disables incremental decision-table maintenance:
	// every open/close/setfilter/quarantine transition throws the
	// whole table away and the next match rebuilds it from scratch —
	// the pre-v2 behavior, kept as the exp-churn benchmark baseline.
	FullRebuild bool
	// Queues, when > 1, enables RSS-style multi-queue receive: the
	// interface is configured with this many receive queues, each
	// frame is steered to one by the flow hash (one flow → one queue,
	// preserving per-flow order by construction), and each queue gets
	// its own demux context — its own pending-delivery queue, burst
	// state and kernel entries — running on its own parallel kernel
	// lane.  All queues match against the same atomically-published
	// decision-table snapshot.  0 or 1 leaves the device the
	// byte-identical single-queue world.
	Queues int
}

// Device is one packet-filter pseudodevice instance bound to one
// network interface.
type Device struct {
	host *sim.Host
	nic  *ethersim.NIC
	opt  Options
	kern KernelProtocol

	ports   []*Port // sorted: priority desc, busy-first within priority
	nextID  int
	pktSeen uint64

	// table is the published merged evaluator (EvalTable mode).  It is
	// immutable: open/close/setfilter/quarantine churn patches it with
	// filter.Table.Insert/Remove and swaps the pointer, so a match pass
	// that snapshotted the old pointer finishes on a consistent table
	// while the new one is already published — the RCU discipline that
	// keeps matching stall-free under churn.  nil means "no table
	// built yet"; the next match builds one from scratch.
	table *filter.Table

	// reorderPending defers a §3.2 busy-first reorder that came due in
	// the middle of a coalesced burst to the burst boundary, so every
	// frame within one burst observes a single scan order.
	reorderPending bool

	// Table-maintenance accounting (deterministic units from
	// filter.Table.Work): TableBuilds counts from-scratch builds,
	// TablePatches incremental insert/remove patches, and tableWork the
	// cumulative construction work — the churn benchmark's
	// "rebuild stall" metric.
	TableBuilds  uint64
	TablePatches uint64
	tableWork    uint64
	tableStall   time.Duration

	// Burst bookkeeping: curBurst is non-zero while inputBurst is
	// matching a coalesced burst, and per-port/table stamps record
	// which burst last charged the fixed FilterApply setup, so it is
	// charged once per burst instead of once per frame.
	burstSeq   uint64
	curBurst   uint64
	tableBurst uint64

	// queueCap, when non-zero, caps the effective input-queue limit
	// of every port on the device — the fault engine's "port-queue
	// pressure" knob.
	queueCap int

	// rx holds one demux context per receive queue (always at least
	// one).  Each context owns its own pending-delivery queue and
	// burst bookkeeping, because kernel grants complete in request
	// order only within one lane — across lanes completions
	// interleave, so per-queue FIFOs are what keep the "head of the
	// pending queue is the frame whose charge just retired" invariant
	// true.  The match scratch slices stay on the device: matching is
	// synchronous within one event callback, and the event loop runs
	// callbacks one at a time even when lanes overlap in virtual time.
	rx          []*rxCtx
	treeScratch []*Port
	wakeScratch []*Port

	// Governor state (gov.go): queuedTotal tracks packets queued
	// across all ports O(1); scanQuarSkip is set by a match pass that
	// skipped at least one quarantined filter, so a resulting
	// no-match drop is attributed DropQuota rather than DropNoMatch.
	queuedTotal    int
	shedding       bool
	admissionSheds uint64
	scanQuarSkip   bool

	// KernelDrops counts packets that matched no filter or
	// overflowed a port queue.
	KernelDrops uint64
}

// rxCtx is one receive queue's demux context: the per-queue pending
// delivery FIFO, burst bookkeeping, pre-bound completion callbacks,
// kernel lane and KernelTime tags.  A single-queue device has exactly
// one, with lane -1 (the main CPU) and the plain "filter"/"pf" tags —
// byte-identical to the pre-multi-queue device.
type rxCtx struct {
	d   *Device
	idx int
	// lane is the host kernel lane this queue's filter and pf work
	// runs on (-1 = the main CPU), matching the queue's driver lane
	// so one frame's whole kernel path stays on one parallel thread.
	lane      int
	filterTag string
	pfTag     string

	pend      []delivery
	pendHead  int
	burstLens []int
	burstHead int

	deliverOneFn      func()
	deliverBurstFn    func()
	markFilterFn      func()
	markBurstFilterFn func()
}

// Attach creates a packet-filter device on nic and installs its
// receive handler, demultiplexing to kern (may be nil) first.
func Attach(nic *ethersim.NIC, kern KernelProtocol, opt Options) *Device {
	if opt.ReorderEvery <= 0 {
		opt.ReorderEvery = 64
	}
	if opt.Gov.Enabled {
		opt.Gov = opt.Gov.withDefaults()
	}
	if opt.Queues < 1 {
		opt.Queues = 1
	}
	d := &Device{host: nic.Host(), nic: nic, opt: opt, kern: kern}
	nic.SetQueues(opt.Queues)
	d.rx = make([]*rxCtx, opt.Queues)
	for i := range d.rx {
		rx := &rxCtx{d: d, idx: i, lane: nic.LaneFor(i), filterTag: "filter", pfTag: "pf"}
		if opt.Queues > 1 {
			rx.filterTag = fmt.Sprintf("filter.q%d", i)
			rx.pfTag = fmt.Sprintf("pf.q%d", i)
		}
		rx.deliverOneFn = rx.deliverOne
		rx.deliverBurstFn = rx.deliverBurst
		rx.markFilterFn = rx.markFilter
		rx.markBurstFilterFn = rx.markBurstFilter
		d.rx[i] = rx
	}
	nic.Handler = d.input
	nic.BurstHandler = nil
	nic.SetCoalesce(opt.CoalesceBudget, opt.CoalesceDelay)
	if opt.CoalesceBudget > 1 {
		nic.BurstHandler = d.inputBurst
	}
	// Port state lives in the kernel and dies with the machine:
	// every open port is closed on a crash, so surviving process
	// goroutines see ErrClosed and must re-open and re-bind their
	// filters on recovery.
	nic.Host().OnCrash(d.crash)
	return d
}

// Queues returns the number of receive-queue demux contexts.
func (d *Device) Queues() int { return len(d.rx) }

// crash closes every port in event-loop context (no process to charge
// syscalls to): queues are flushed, blocked readers and selectors wake
// to find ErrClosed.
func (d *Device) crash() {
	tr := d.host.Sim().Tracer()
	now := d.host.Clock().Now()
	ports := d.ports
	d.ports = nil
	d.table = nil
	d.reorderPending = false
	// Matched-but-undelivered frames die with the kernel: their "pf"
	// completions were dropped from the host's interrupt and lane
	// queues, so every queue's pending FIFO must empty in step.
	for _, rx := range d.rx {
		for i := rx.pendHead; i < len(rx.pend); i++ {
			tr.SpanDrop(rx.pend[i].span, now, d.host.Name(), trace.DropCrash)
		}
		rx.pend = rx.pend[:0]
		rx.pendHead = 0
		rx.burstLens = rx.burstLens[:0]
		rx.burstHead = 0
	}
	d.queuedTotal = 0
	d.shedding = false
	for _, port := range ports {
		for _, pkt := range port.queued() {
			tr.SpanDrop(pkt.span, now, d.host.Name(), trace.DropCrash)
		}
		port.closed = true
		port.queue = nil
		port.qhead = 0
		// Ring attachments die with the kernel's port state; the
		// segment itself is user memory and survives, free for the
		// re-opened port to map again.
		port.detachRing()
		port.readers.WakeAll(d.host)
		for _, w := range port.watchers {
			w.WakeAll(d.host)
		}
	}
}

// SetQueueCap caps (or, with 0, uncaps) the effective input-queue
// length of every port on the device, on top of each port's own
// limit.  The fault engine uses it to model transient kernel-memory
// pressure on the port queues.
func (d *Device) SetQueueCap(n int) { d.queueCap = n }

// Host returns the host the device lives on.
func (d *Device) Host() *sim.Host { return d.host }

// NIC returns the underlying interface.
func (d *Device) NIC() *ethersim.NIC { return d.nic }

// Status is the §3.3 control/status information: "the type of the
// underlying data-link layer; the lengths of a data-link layer address
// and of a data-link layer header; the maximum packet size ...; the
// data-link address for incoming packets; and the address used for
// data-link layer broadcasts".
type Status struct {
	LinkType  ethersim.LinkType
	HeaderLen int
	AddrLen   int
	MaxPacket int
	Addr      ethersim.Addr
	Broadcast ethersim.Addr
}

// Status returns the device status block.  Process context; charges an
// ioctl.
func (d *Device) Status(p *sim.Proc) Status {
	p.Syscall("pf")
	l := d.nic.Network().Link()
	return Status{
		LinkType:  l,
		HeaderLen: l.HeaderLen(),
		AddrLen:   l.AddrLen(),
		MaxPacket: l.MaxFrame(),
		Addr:      d.nic.Addr(),
		Broadcast: l.BroadcastAddr(),
	}
}

// input is the NIC receive handler (event-loop context, driver cost
// already charged).  The frame's receive queue — chosen by the NIC's
// steering hash — selects the demux context.
func (d *Device) input(frame []byte) {
	d.rx[d.nic.RxQueue()].inputSpanned(frame, d.nic.RxSpan())
}

// claim offers the frame (and its span) to the kernel protocol chain.
// Under SeeAll the span is not offered: the packet filter still sees
// the frame, so the span follows the pf path and the kernel's copy is
// a non-event for provenance.
func (d *Device) claim(frame []byte, span uint64) bool {
	if d.kern == nil {
		return false
	}
	if d.opt.SeeAll {
		d.kern.Claim(frame)
		return false
	}
	tr := d.host.Sim().Tracer()
	tr.SpanClaimArm(span)
	claimed := d.kern.Claim(frame)
	tr.SpanClaimSettle(d.host.Clock().Now(), d.host.Name(), claimed)
	return claimed
}

// inputSpanned is input with the frame's provenance span made
// explicit (tests drive it directly; the NIC handler path recovers
// the span and queue from the interface side channel).  It feeds
// queue 0's context — the only one on a single-queue device.
func (d *Device) inputSpanned(frame []byte, span uint64) {
	d.rx[0].inputSpanned(frame, span)
}

// xqCost charges the cross-queue delivery penalty: each accepting
// port remembers the queue that last delivered to it, and a handoff
// from a different queue's kernel thread costs XQDeliver.  Per-flow
// steering makes this rare — it takes distinct flows matched by one
// port straddling queues.  Free (and uncounted) on a single-queue
// device.
func (rx *rxCtx) xqCost(ports []*Port) time.Duration {
	d := rx.d
	if len(d.rx) == 1 {
		return 0
	}
	var cost time.Duration
	for _, port := range ports {
		if port.lastRxQ >= 0 && port.lastRxQ != rx.idx {
			cost += d.host.Costs().XQDeliver
			d.host.Counters.XQDeliveries++
			d.host.Sim().Counters.XQDeliveries++
		}
		port.lastRxQ = rx.idx
	}
	return cost
}

func (rx *rxCtx) inputSpanned(frame []byte, span uint64) {
	d := rx.d
	if d.claim(frame, span) {
		return
	}
	if !d.admitFrame() {
		// Overload: shed at demux entry, before any filter cost.
		d.shedFrame(span)
		return
	}
	arrival := d.host.Clock().Now()
	tr := d.host.Sim().Tracer()
	if tr != nil {
		tr.PacketIn(arrival, d.host.Name())
	}
	tr.SpanMark(span, trace.StageDemux, arrival)
	d.pktSeen++
	d.maybeReorder()

	// Evaluate the filters now (real computation), then charge the
	// resulting virtual cost before the packet becomes visible.
	// Predicate evaluation is accounted separately from the fixed
	// per-packet work so experiments can reproduce §6.1's "41% of
	// this time is spent evaluating filter predicates".
	costs := d.host.Costs()
	dl := rx.pushPending(frame, arrival)
	dl.span = span
	var filterCost time.Duration

	if d.opt.Mode == EvalTable {
		dl.ports, filterCost = d.tableMatch(frame, dl.ports)
	} else {
		dl.ports, filterCost = d.linearMatch(frame, dl.ports)
	}
	dl.quarSkip = d.scanQuarSkip
	cost := costs.PfInput + rx.xqCost(dl.ports)

	for _, port := range dl.ports {
		if port.stamp {
			cost += costs.Timestamp
		}
	}

	d.host.RunKernelOn(rx.lane, rx.filterTag, filterCost, rx.markFilterFn)
	d.host.RunKernelOn(rx.lane, rx.pfTag, cost, rx.deliverOneFn)
}

// markFilter runs when a frame's "filter" CPU charge retires — always
// immediately before the same frame's "pf" completion (each lane's
// kernel grants complete in request order), so the head of the
// queue's pending FIFO is the frame whose evaluation just finished.
func (rx *rxCtx) markFilter() {
	d := rx.d
	if rx.pendHead < len(rx.pend) {
		d.host.Sim().Tracer().SpanMark(rx.pend[rx.pendHead].span, trace.StageFilter, d.host.Clock().Now())
	}
}

// markBurstFilter is markFilter for a coalesced burst: the burst's
// frames occupy the front of the queue's pending FIFO.
func (rx *rxCtx) markBurstFilter() {
	d := rx.d
	if rx.burstHead >= len(rx.burstLens) {
		return
	}
	n := rx.burstLens[rx.burstHead]
	tr := d.host.Sim().Tracer()
	now := d.host.Clock().Now()
	for i := 0; i < n && rx.pendHead+i < len(rx.pend); i++ {
		tr.SpanMark(rx.pend[rx.pendHead+i].span, trace.StageFilter, now)
	}
}

// delivery is one matched frame awaiting its "pf" CPU charge; the
// ports slice backing is recycled across frames.
type delivery struct {
	frame   []byte
	arrival time.Duration
	span    uint64
	ports   []*Port
	// quarSkip records that the frame's match pass skipped at least
	// one quarantined filter, so a no-match outcome is the governor's
	// doing (DropQuota) rather than the filter set's (DropNoMatch).
	quarSkip bool
}

// pushPending appends a pending delivery to the queue's FIFO, reusing
// a recycled slot's ports capacity when one is available.
func (rx *rxCtx) pushPending(frame []byte, arrival time.Duration) *delivery {
	n := len(rx.pend)
	if n < cap(rx.pend) {
		rx.pend = rx.pend[:n+1]
	} else {
		rx.pend = append(rx.pend, delivery{})
	}
	dl := &rx.pend[n]
	dl.frame, dl.arrival, dl.span = frame, arrival, 0
	dl.ports = dl.ports[:0]
	dl.quarSkip = false
	return dl
}

// popPending consumes the queue's oldest pending delivery.  The
// returned value shares its ports backing with the slot, which is only
// reused by a later pushPending — never while the caller is still
// delivering.
func (rx *rxCtx) popPending() delivery {
	dl := rx.pend[rx.pendHead]
	rx.pend[rx.pendHead].frame = nil
	rx.pendHead++
	if rx.pendHead == len(rx.pend) {
		rx.pend = rx.pend[:0]
		rx.pendHead = 0
	}
	return dl
}

func (rx *rxCtx) pushBurst(n int) {
	rx.burstLens = append(rx.burstLens, n)
}

func (rx *rxCtx) popBurst() int {
	n := rx.burstLens[rx.burstHead]
	rx.burstHead++
	if rx.burstHead == len(rx.burstLens) {
		rx.burstLens = rx.burstLens[:0]
		rx.burstHead = 0
	}
	return n
}

// deliverOne completes one input(): it runs after the "pf" CPU charge
// and enqueues (or drops) the queue's oldest pending frame.
func (rx *rxCtx) deliverOne() {
	d := rx.d
	dl := rx.popPending()
	tr := d.host.Sim().Tracer()
	if len(dl.ports) == 0 {
		d.KernelDrops++
		d.host.Counters.PacketsDropped++
		d.host.Sim().Counters.PacketsDropped++
		reason, label := trace.DropNoMatch, "nomatch"
		if dl.quarSkip {
			reason, label = trace.DropQuota, "quota"
		}
		if tr != nil {
			tr.Drop(d.host.Clock().Now(), d.host.Name(), label)
		}
		tr.SpanDrop(dl.span, d.host.Clock().Now(), d.host.Name(), reason)
		return
	}
	for i, port := range dl.ports {
		s := dl.span
		if i > 0 {
			// Copy-all delivery to further ports forks child spans so
			// each enqueue terminates independently.
			s = tr.SpanFork(dl.span, d.host.Clock().Now(), d.host.Name())
		}
		port.enqueue(dl.frame, dl.arrival, s)
	}
}

// inputBurst is the coalesced receive handler: the interface hands
// over several frames under one driver entry, and the device runs one
// "filter" and one "pf" kernel entry for the whole burst.  The fixed
// per-entry setup (PfInput, and FilterApply per port) is charged once;
// each further frame costs only the marginal PfPoll — §6's fixed
// overheads spread over the burst.  Blocked readers are woken once per
// port per burst instead of once per frame.
func (d *Device) inputBurst(frames [][]byte) {
	d.rx[d.nic.RxQueue()].inputBurst(frames)
}

func (rx *rxCtx) inputBurst(frames [][]byte) {
	d := rx.d
	if len(frames) == 1 {
		// A singleton burst takes the ordinary per-frame path, so an
		// isolated packet sees bit-identical costs and latency with
		// coalescing on or off.
		rx.inputSpanned(frames[0], d.nic.RxSpan())
		return
	}
	spans := d.nic.RxBurstSpans()
	arrival := d.host.Clock().Now()
	tr := d.host.Sim().Tracer()
	costs := d.host.Costs()

	nDel := 0
	var filterCost, pfCost time.Duration
	// burstSeq is one device-wide monotonic stamp across all queues:
	// per-port FilterApply amortization compares stamps for equality,
	// so bursts on different queues never share a setup charge.
	d.burstSeq++
	d.curBurst = d.burstSeq
	for k, frame := range frames {
		var span uint64
		if k < len(spans) {
			span = spans[k]
		}
		if d.claim(frame, span) {
			continue
		}
		if !d.admitFrame() {
			d.shedFrame(span)
			continue
		}
		if tr != nil {
			tr.PacketIn(arrival, d.host.Name())
		}
		tr.SpanMark(span, trace.StageDemux, arrival)
		d.pktSeen++
		d.maybeReorder()
		dl := rx.pushPending(frame, arrival)
		dl.span = span
		var fc time.Duration
		if d.opt.Mode == EvalTable {
			dl.ports, fc = d.tableMatch(frame, dl.ports)
		} else {
			dl.ports, fc = d.linearMatch(frame, dl.ports)
		}
		dl.quarSkip = d.scanQuarSkip
		filterCost += fc
		if nDel == 0 {
			pfCost += costs.PfInput
		} else {
			pfCost += costs.PfPoll
		}
		pfCost += rx.xqCost(dl.ports)
		for _, port := range dl.ports {
			if port.stamp {
				pfCost += costs.Timestamp
			}
		}
		nDel++
	}
	d.curBurst = 0
	if d.reorderPending {
		// A reorder that came due mid-burst was held so every frame of
		// the burst matched against one scan order; apply it now, at
		// the burst boundary.
		d.reorderPending = false
		d.reorder()
	}
	if nDel == 0 {
		return
	}
	rx.pushBurst(nDel)
	d.host.RunKernelOn(rx.lane, rx.filterTag, filterCost, rx.markBurstFilterFn)
	d.host.RunKernelOn(rx.lane, rx.pfTag, pfCost, rx.deliverBurstFn)
}

// deliverBurst completes one inputBurst(): it pops the burst's pending
// frames, enqueues them without waking, then wakes each touched port's
// readers once — the once-per-burst wakeup the coalescing path exists
// for.
func (rx *rxCtx) deliverBurst() {
	d := rx.d
	n := rx.popBurst()
	now := d.host.Clock().Now()
	tr := d.host.Sim().Tracer()
	wake := d.wakeScratch[:0]
	for k := 0; k < n; k++ {
		dl := rx.popPending()
		if len(dl.ports) == 0 {
			d.KernelDrops++
			d.host.Counters.PacketsDropped++
			d.host.Sim().Counters.PacketsDropped++
			reason, label := trace.DropNoMatch, "nomatch"
			if dl.quarSkip {
				reason, label = trace.DropQuota, "quota"
			}
			if tr != nil {
				tr.Drop(now, d.host.Name(), label)
			}
			tr.SpanDrop(dl.span, now, d.host.Name(), reason)
			continue
		}
		for i, port := range dl.ports {
			s := dl.span
			if i > 0 {
				s = tr.SpanFork(dl.span, now, d.host.Name())
			}
			if port.enqueueQuiet(dl.frame, dl.arrival, s) && !port.wakePending {
				port.wakePending = true
				wake = append(wake, port)
			}
		}
	}
	for _, port := range wake {
		port.wakePending = false
		port.wakeReaders()
	}
	d.wakeScratch = wake[:0]
}

// linearMatch applies filters in priority order (figure 4-1),
// appending the accepting ports to dst, and returns the (possibly
// regrown) slice and the virtual evaluation cost.
func (d *Device) linearMatch(frame []byte, dst []*Port) ([]*Port, time.Duration) {
	costs := d.host.Costs()
	tr := d.host.Sim().Tracer()
	now := d.host.Clock().Now()
	var cost time.Duration
	accepted := dst
	gov := d.opt.Gov.Enabled
	d.scanQuarSkip = false
	for _, port := range d.ports {
		if port.closed || port.prog == nil {
			continue
		}
		if gov && !port.govAdmit(now, &d.opt.Gov) {
			// Quarantined: the filter is skipped outright — no setup
			// cost, no instruction charges, no chance to match.
			d.scanQuarSkip = true
			continue
		}
		d.host.Counters.FilterApplied++
		d.host.Sim().Counters.FilterApplied++
		if d.curBurst == 0 || port.applyBurst != d.curBurst {
			// The fixed interpreter-setup cost; within one coalesced
			// burst it is charged once per port and amortized over
			// the burst's frames.
			cost += costs.FilterApply
			port.applyBurst = d.curBurst
		}

		accept, instrs := port.eval(frame)
		cost += time.Duration(instrs) * costs.FilterInstr
		d.host.Counters.FilterInstrs += uint64(instrs)
		d.host.Sim().Counters.FilterInstrs += uint64(instrs)
		port.instrs += uint64(instrs)
		if gov {
			port.govCharge(instrs)
		}
		if tr != nil {
			tr.FilterEval(now, d.host.Name(), port.id, instrs, accept)
		}

		if !accept {
			continue
		}
		port.matches++
		d.host.Counters.PacketsMatched++
		d.host.Sim().Counters.PacketsMatched++
		accepted = append(accepted, port)
		if !port.copyAll {
			// A non-copy-all accept ends the scan: later filters — even
			// at the same priority — do not see the packet.  Priority
			// ties resolve deterministically to the first accepting
			// port in the current scan order (priority descending,
			// busy-first within a priority), which is what makes the
			// §3.2 busy-first reordering pay off.  A copy-all accept
			// instead lets the packet continue to every later filter,
			// which is how monitors coexist with the monitored.
			// tableMatch implements the identical rule over the same
			// port order; the linear/table equivalence property pins
			// it.
			break
		}
	}
	return accepted, cost
}

// tableMatch uses the merged decision table.  v2 splits the work in
// two: the table answers "which filters accept this frame" (one tree
// walk plus lazily evaluated flat-code fallbacks), while the device
// drives the scan over d.ports in the same order as linearMatch —
// priority descending, busy-first within a priority — deciding
// governor admission at the moment each port is reached and stopping
// at the first non-copy-all accept, exactly like the linear rule.
// Scan order therefore never lives inside the table, which is what
// lets reorder() and sortPorts leave the table untouched.
//
// Virtual cost: one FilterApply for starting the walk (amortized over
// a coalesced burst like the linear path's per-port setup) plus one
// FilterInstr per unit of work the match actually did — each
// decision-tree node whose packet word was examined, plus every
// instruction the fallbacks the scan actually reached interpreted
// (fallbacks past the stopping port are never run, mirroring the
// linear early exit).  Fallback filters charge their own interpreter
// runs; the tree walk's path depth is split evenly across the reached
// tree-accepting ports (remainder to the first; port -1 only when the
// walk's work benefited no reached port).
//
// Governor transitions patch the published table in place: a port
// denied admission is removed (its filter becomes unreachable, like a
// closed port's), and a forgiven port is re-inserted, with its
// transition packet evaluated directly against its own flat code since
// the already-snapshotted table cannot answer for it.  The snapshot
// taken at the top of the match keeps this packet's view consistent
// while the patched table is published for the next one.
func (d *Device) tableMatch(frame []byte, dst []*Port) ([]*Port, time.Duration) {
	costs := d.host.Costs()
	tr := d.host.Sim().Tracer()
	now := d.host.Clock().Now()
	gov := d.opt.Gov.Enabled
	d.scanQuarSkip = false
	var stall time.Duration
	if d.table == nil {
		// A rebuild on the packet path is a stall: the frame waits
		// while the kernel recompiles the whole filter set.  Charge its
		// work at instruction rate so churn under Options.FullRebuild
		// shows up in per-packet cost and tail latency; incremental
		// patches run at setfilter/close time, off this path.
		w0 := d.tableWork
		d.rebuildTable()
		stall = time.Duration(d.tableWork-w0) * costs.FilterInstr
		d.tableStall += stall
	}
	tbl := d.table // this match's immutable snapshot
	treeIdxs, edges := tbl.TreeMatch(frame)
	total := edges

	slotAccepted := func(slot int) bool {
		for _, i := range treeIdxs {
			if i == slot {
				return true
			}
		}
		return false
	}

	accepted, treeAccepts := dst, d.treeScratch[:0]
	for _, port := range d.ports {
		if port.closed || port.prog == nil {
			continue
		}
		// The slot this port held in the snapshot, before any
		// transition this scan performs on it (slots are stable under
		// patching, so other ports' transitions cannot move it).
		slot := port.slot
		if gov {
			if !port.govAdmit(now, &d.opt.Gov) {
				// Quarantined: skipped outright, no setup cost, no
				// instruction charges, no chance to match — and no
				// longer reachable through the published table.
				d.scanQuarSkip = true
				if port.tableActive {
					port.tableActive = false
					d.tableRemovePort(port)
				}
				continue
			}
			if !port.tableActive {
				// Forgiven: the filter re-enters dispatch.
				port.tableActive = true
				d.tableInsertPort(port)
			}
		}

		var accept bool
		ran := false // a flat-code run charged to this port
		instrs := 0
		switch {
		case slot >= 0:
			if fp := tbl.Fallback(slot); fp != nil {
				r := fp.Run(frame)
				accept, instrs, ran = r.Accept, r.Instrs, true
			} else {
				accept = slotAccepted(slot)
			}
		case port.fp != nil:
			// Not in the snapshot (typically the quarantine-exit
			// transition packet): the port's own flat code answers.
			r := port.fp.Run(frame)
			accept, instrs, ran = r.Accept, r.Instrs, true
		}
		if ran {
			total += instrs
			port.instrs += uint64(instrs)
			if gov {
				port.govCharge(instrs)
			}
			if tr != nil {
				tr.FilterEval(now, d.host.Name(), port.id, instrs, accept)
			}
		} else if accept {
			treeAccepts = append(treeAccepts, port)
		}
		if !accept {
			continue
		}
		port.matches++
		d.host.Counters.PacketsMatched++
		d.host.Sim().Counters.PacketsMatched++
		accepted = append(accepted, port)
		if !port.copyAll {
			// Same rule as linearMatch: a non-copy-all accept ends the
			// scan; ports past this point are not reached at all.
			break
		}
	}

	switch {
	case len(treeAccepts) > 0:
		share := edges / len(treeAccepts)
		extra := edges % len(treeAccepts)
		for k, port := range treeAccepts {
			in := share
			if k < extra {
				in++
			}
			port.instrs += uint64(in)
			if gov {
				port.govCharge(in)
			}
			if tr != nil {
				tr.FilterEval(now, d.host.Name(), port.id, in, true)
			}
		}
	case edges > 0:
		// The walk's work benefited no reached port; it stays
		// device-level.
		if tr != nil {
			tr.FilterEval(now, d.host.Name(), -1, edges, false)
		}
	}
	d.treeScratch = treeAccepts[:0]

	cost := time.Duration(total)*costs.FilterInstr + stall
	if d.curBurst == 0 || d.tableBurst != d.curBurst {
		cost += costs.FilterApply
		d.tableBurst = d.curBurst
	}
	d.host.Counters.FilterApplied++
	d.host.Sim().Counters.FilterApplied++
	d.host.Counters.FilterInstrs += uint64(total)
	d.host.Sim().Counters.FilterInstrs += uint64(total)
	return accepted, cost
}

// rebuildTable compiles the full filter set from scratch — the first
// bind under incremental maintenance (at setfilter time), or any churn
// under Options.FullRebuild (on the match path, as a stall).
func (d *Device) rebuildTable() {
	var filters []filter.Filter
	gov := d.opt.Gov.Enabled
	for _, port := range d.ports {
		port.slot = -1
	}
	var included []*Port
	for _, port := range d.ports {
		if port.closed || port.prog == nil || (gov && !port.tableActive) {
			continue
		}
		filters = append(filters, filter.Filter{Priority: port.priority, Program: port.prog})
		included = append(included, port)
	}
	d.table = filter.BuildTable(filters)
	for i, port := range included {
		port.slot = i
	}
	d.TableBuilds++
	d.tableWork += uint64(d.table.Work())
}

// tableInsertPort patches the port's current filter into the published
// table (or schedules a full rebuild under Options.FullRebuild).  The
// first bind builds the table eagerly: under incremental maintenance
// all construction happens at setfilter/close syscall time, so the
// match path never compiles — the from-scratch-on-match path is the
// FullRebuild baseline's alone.
func (d *Device) tableInsertPort(port *Port) {
	if d.opt.Mode != EvalTable || port.closed || port.prog == nil {
		return
	}
	if d.opt.FullRebuild {
		d.table = nil
		return
	}
	if d.table == nil {
		d.rebuildTable()
		return
	}
	before := d.table.Work()
	nt, slot := d.table.Insert(filter.Filter{Priority: port.priority, Program: port.prog})
	d.table = nt
	port.slot = slot
	d.TablePatches++
	d.tableWork += uint64(nt.Work() - before)
}

// tableRemovePort patches the port's filter out of the published table
// (or schedules a full rebuild under Options.FullRebuild).
func (d *Device) tableRemovePort(port *Port) {
	if d.opt.Mode != EvalTable {
		return
	}
	if d.opt.FullRebuild {
		d.table = nil
		port.slot = -1
		return
	}
	if d.table == nil || port.slot < 0 {
		return
	}
	before := d.table.Work()
	d.table = d.table.Remove(port.slot)
	port.slot = -1
	d.TablePatches++
	d.tableWork += uint64(d.table.Work() - before)
}

// TableWork returns the cumulative decision-table construction work in
// deterministic filter.Table.Work units — the churn benchmark's
// maintenance-cost metric.
func (d *Device) TableWork() uint64 { return d.tableWork }

// TableStall returns the cumulative virtual time packets have spent
// waiting on from-scratch table compiles on the match path.
// Incremental maintenance patches at setfilter/close time, so after
// the cold build this stays flat; under Options.FullRebuild every
// churn event adds a whole-population compile here.
func (d *Device) TableStall() time.Duration { return d.tableStall }

// maybeReorder runs a due §3.2 busy-first reorder, deferring it to the
// burst boundary when a coalesced burst is mid-flight so all frames of
// one burst observe a single scan order.
func (d *Device) maybeReorder() {
	if !d.opt.Reorder || d.pktSeen%uint64(d.opt.ReorderEvery) != 0 {
		return
	}
	if d.curBurst != 0 {
		d.reorderPending = true
		return
	}
	d.reorder()
}

// sortPorts re-sorts the port list: priority descending, preserving
// the current relative order within equal priorities (which reorder()
// adjusts by busyness).  The decision table is order-free in v2 — the
// device scans d.ports itself — so sorting does not touch it.
func (d *Device) sortPorts() {
	// Insertion sort keeps it stable and the lists are short.
	for i := 1; i < len(d.ports); i++ {
		for j := i; j > 0 && d.ports[j-1].priority < d.ports[j].priority; j-- {
			d.ports[j-1], d.ports[j] = d.ports[j], d.ports[j-1]
		}
	}
}

// reorder moves busier filters earlier within each equal-priority
// group (§3.2).  Equal-priority ties are resolved by the device's own
// scan in both evaluation modes, so the decision table stays valid
// across reorders.
func (d *Device) reorder() {
	for i := 1; i < len(d.ports); i++ {
		for j := i; j > 0 &&
			d.ports[j-1].priority == d.ports[j].priority &&
			d.ports[j-1].matches < d.ports[j].matches; j-- {
			d.ports[j-1], d.ports[j] = d.ports[j], d.ports[j-1]
		}
	}
}

// Errors returned by port operations.
var (
	ErrTimeout    = errors.New("pfdev: read timed out")
	ErrClosed     = errors.New("pfdev: port closed")
	ErrNoFilter   = errors.New("pfdev: no filter bound")
	ErrWouldBlock = errors.New("pfdev: no packet queued")
	ErrPriority   = errors.New("pfdev: priority reserved for privileged ports")
)
