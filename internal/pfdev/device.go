// Package pfdev implements the packet filter pseudodevice of §3-§4:
// a kernel-resident demultiplexer layered above a network interface
// driver.  User processes open ports, bind filter programs with
// priorities, and read/write complete data-link frames; the device
// applies the filters of every port to each received packet in order
// of decreasing priority and queues the packet on the first port whose
// filter accepts it (figure 4-1), optionally letting it fall through
// to lower-priority filters as well.
//
// The device runs inside the sim kernel: filter evaluation, queueing
// and timestamping consume virtual kernel CPU on the host, and reads,
// writes and ioctls by processes charge system-call and copy costs, so
// every number the paper's §6 measures is observable.
package pfdev

import (
	"errors"
	"time"

	"repro/internal/ethersim"
	"repro/internal/filter"
	"repro/internal/sim"
)

// EvalMode selects how the device evaluates filter programs; the modes
// trace the paper's implementation (§4) and its §7 improvement
// proposals, and the ablation benchmarks compare them.
type EvalMode int

const (
	// EvalChecked is the production interpreter with full
	// per-instruction checking (§4).
	EvalChecked EvalMode = iota
	// EvalFast pre-validates programs at bind time and skips the
	// per-instruction checks (§7, "all these tests can be performed
	// ahead of time").
	EvalFast
	// EvalCompiled compiles programs to native closures at bind
	// time (§7, "compiling filters into machine code").
	EvalCompiled
	// EvalTable merges all bound filters into one decision table
	// (§7, "the best possible performance").  Virtual cost is
	// charged per decision-tree edge rather than per instruction.
	EvalTable
)

// KernelProtocol lets a kernel-resident protocol stack (package inet)
// claim frames before the packet filter sees them, matching the
// paper's deployment: "The packet filter is called from the network
// interface drivers upon receipt of packets not destined for
// kernel-resident protocols."
type KernelProtocol interface {
	// Claim returns true if the kernel stack consumed the frame.
	Claim(frame []byte) bool
}

// Chain combines kernel protocols: the first to claim a frame wins.
// Figure 3-3's coexistence — kernel IP plus kernel VMTP plus the
// packet filter — is a two-element chain.
func Chain(protos ...KernelProtocol) KernelProtocol {
	return chain(protos)
}

type chain []KernelProtocol

func (c chain) Claim(frame []byte) bool {
	for _, kp := range c {
		if kp != nil && kp.Claim(frame) {
			return true
		}
	}
	return false
}

// Options configures a Device.
type Options struct {
	Mode EvalMode
	// Reorder enables the §3.2 optimization: "the interpreter may
	// occasionally reorder such filters to place the busier ones
	// first" among equal-priority filters.
	Reorder bool
	// ReorderEvery is the packet interval between reorder passes
	// (default 64).
	ReorderEvery int
	// SeeAll delivers every frame to the packet filter even if a
	// kernel-resident protocol claimed it, so monitors can watch
	// kernel traffic too.
	SeeAll bool
	// Extensions permits the §7 extended instructions in bound
	// programs.
	Extensions bool
	// PrivilegedPriority, when non-zero, restricts filters at or
	// above that priority to ports opened with OpenPrivileged —
	// the security mechanism §3.2 describes: "An earlier version of
	// the packet filter did provide some security by restricting
	// the use of high-priority filters to certain users, allowing
	// these users first rights to all packets."  (The paper notes
	// it went unused; it is here for completeness.)
	PrivilegedPriority uint8
}

// Device is one packet-filter pseudodevice instance bound to one
// network interface.
type Device struct {
	host *sim.Host
	nic  *ethersim.NIC
	opt  Options
	kern KernelProtocol

	ports   []*Port // sorted: priority desc, busy-first within priority
	nextID  int
	pktSeen uint64

	table      *filter.Table // EvalTable mode: merged evaluator
	tablePorts []*Port       // table index -> port

	// queueCap, when non-zero, caps the effective input-queue limit
	// of every port on the device — the fault engine's "port-queue
	// pressure" knob.
	queueCap int

	// KernelDrops counts packets that matched no filter or
	// overflowed a port queue.
	KernelDrops uint64
}

// Attach creates a packet-filter device on nic and installs its
// receive handler, demultiplexing to kern (may be nil) first.
func Attach(nic *ethersim.NIC, kern KernelProtocol, opt Options) *Device {
	if opt.ReorderEvery <= 0 {
		opt.ReorderEvery = 64
	}
	d := &Device{host: nic.Host(), nic: nic, opt: opt, kern: kern}
	nic.Handler = d.input
	// Port state lives in the kernel and dies with the machine:
	// every open port is closed on a crash, so surviving process
	// goroutines see ErrClosed and must re-open and re-bind their
	// filters on recovery.
	nic.Host().OnCrash(d.crash)
	return d
}

// crash closes every port in event-loop context (no process to charge
// syscalls to): queues are flushed, blocked readers and selectors wake
// to find ErrClosed.
func (d *Device) crash() {
	ports := d.ports
	d.ports = nil
	d.table = nil
	d.tablePorts = nil
	for _, port := range ports {
		port.closed = true
		port.queue = nil
		// Ring attachments die with the kernel's port state; the
		// segment itself is user memory and survives, free for the
		// re-opened port to map again.
		port.detachRing()
		port.readers.WakeAll(d.host)
		for _, w := range port.watchers {
			w.WakeAll(d.host)
		}
	}
}

// SetQueueCap caps (or, with 0, uncaps) the effective input-queue
// length of every port on the device, on top of each port's own
// limit.  The fault engine uses it to model transient kernel-memory
// pressure on the port queues.
func (d *Device) SetQueueCap(n int) { d.queueCap = n }

// Host returns the host the device lives on.
func (d *Device) Host() *sim.Host { return d.host }

// NIC returns the underlying interface.
func (d *Device) NIC() *ethersim.NIC { return d.nic }

// Status is the §3.3 control/status information: "the type of the
// underlying data-link layer; the lengths of a data-link layer address
// and of a data-link layer header; the maximum packet size ...; the
// data-link address for incoming packets; and the address used for
// data-link layer broadcasts".
type Status struct {
	LinkType  ethersim.LinkType
	HeaderLen int
	AddrLen   int
	MaxPacket int
	Addr      ethersim.Addr
	Broadcast ethersim.Addr
}

// Status returns the device status block.  Process context; charges an
// ioctl.
func (d *Device) Status(p *sim.Proc) Status {
	p.Syscall("pf")
	l := d.nic.Network().Link()
	return Status{
		LinkType:  l,
		HeaderLen: l.HeaderLen(),
		AddrLen:   l.AddrLen(),
		MaxPacket: l.MaxFrame(),
		Addr:      d.nic.Addr(),
		Broadcast: l.BroadcastAddr(),
	}
}

// input is the NIC receive handler (event-loop context, driver cost
// already charged).
func (d *Device) input(frame []byte) {
	if d.kern != nil && d.kern.Claim(frame) && !d.opt.SeeAll {
		return
	}
	arrival := d.host.Sim().Now()
	tr := d.host.Sim().Tracer()
	if tr != nil {
		tr.PacketIn(arrival, d.host.Name())
	}
	d.pktSeen++
	if d.opt.Reorder && d.pktSeen%uint64(d.opt.ReorderEvery) == 0 {
		d.reorder()
	}

	// Evaluate the filters now (real computation), then charge the
	// resulting virtual cost before the packet becomes visible.
	// Predicate evaluation is accounted separately from the fixed
	// per-packet work so experiments can reproduce §6.1's "41% of
	// this time is spent evaluating filter predicates".
	costs := d.host.Costs()
	var filterCost time.Duration
	var accepted []*Port

	if d.opt.Mode == EvalTable {
		accepted, filterCost = d.tableMatch(frame)
	} else {
		accepted, filterCost = d.linearMatch(frame)
	}
	cost := costs.PfInput

	for _, port := range accepted {
		if port.stamp {
			cost += costs.Timestamp
		}
	}

	own := frame
	d.host.RunKernel("filter", filterCost, nil)
	d.host.RunKernel("pf", cost, func() {
		if len(accepted) == 0 {
			d.KernelDrops++
			d.host.Counters.PacketsDropped++
			d.host.Sim().Counters.PacketsDropped++
			if tr := d.host.Sim().Tracer(); tr != nil {
				tr.Drop(d.host.Sim().Now(), d.host.Name(), "nomatch")
			}
			return
		}
		for _, port := range accepted {
			port.enqueue(own, arrival)
		}
	})
}

// linearMatch applies filters in priority order (figure 4-1) and
// returns the accepting ports and the virtual evaluation cost.
func (d *Device) linearMatch(frame []byte) ([]*Port, time.Duration) {
	costs := d.host.Costs()
	tr := d.host.Sim().Tracer()
	now := d.host.Sim().Now()
	var cost time.Duration
	var accepted []*Port
	for _, port := range d.ports {
		if port.closed || port.prog == nil {
			continue
		}
		d.host.Counters.FilterApplied++
		d.host.Sim().Counters.FilterApplied++
		cost += costs.FilterApply

		accept, instrs := port.eval(frame)
		cost += time.Duration(instrs) * costs.FilterInstr
		d.host.Counters.FilterInstrs += uint64(instrs)
		d.host.Sim().Counters.FilterInstrs += uint64(instrs)
		port.instrs += uint64(instrs)
		if tr != nil {
			tr.FilterEval(now, d.host.Name(), port.id, instrs, accept)
		}

		if !accept {
			continue
		}
		port.matches++
		d.host.Counters.PacketsMatched++
		d.host.Sim().Counters.PacketsMatched++
		accepted = append(accepted, port)
		if !port.copyAll {
			break
		}
		// With copy-all set, the packet continues to
		// lower-priority filters (§3.2); equal-priority filters
		// after this one still see it, which is how monitors
		// coexist with the monitored.
	}
	return accepted, cost
}

// tableMatch uses the merged decision table.  Virtual cost: one
// FilterApply for the walk plus one FilterInstr per condition edge,
// approximated as the depth of the tree path; we charge per matched
// port plus a fixed walk cost, which is the "best possible
// performance" the paper hopes for.
func (d *Device) tableMatch(frame []byte) ([]*Port, time.Duration) {
	costs := d.host.Costs()
	if d.table == nil {
		d.rebuildTable()
	}
	idxs := d.table.Match(frame)
	cost := costs.FilterApply + time.Duration(4)*costs.FilterInstr
	var accepted []*Port
	for _, i := range idxs {
		port := d.tablePorts[i]
		if port.closed {
			continue
		}
		port.matches++
		d.host.Counters.PacketsMatched++
		d.host.Sim().Counters.PacketsMatched++
		accepted = append(accepted, port)
		if !port.copyAll {
			break
		}
	}
	d.host.Counters.FilterApplied++
	d.host.Sim().Counters.FilterApplied++
	if tr := d.host.Sim().Tracer(); tr != nil {
		// One merged walk stands in for all bound filters; it is
		// charged (and reported) as four instruction units, port -1.
		tr.FilterEval(d.host.Sim().Now(), d.host.Name(), -1, 4, len(accepted) > 0)
	}
	return accepted, cost
}

func (d *Device) rebuildTable() {
	var filters []filter.Filter
	d.tablePorts = d.tablePorts[:0]
	for _, port := range d.ports {
		if port.closed || port.prog == nil {
			continue
		}
		filters = append(filters, filter.Filter{Priority: port.priority, Program: port.prog})
		d.tablePorts = append(d.tablePorts, port)
	}
	d.table = filter.BuildTable(filters)
}

// sortPorts re-sorts the port list: priority descending, preserving
// the current relative order within equal priorities (which reorder()
// adjusts by busyness).
func (d *Device) sortPorts() {
	// Insertion sort keeps it stable and the lists are short.
	for i := 1; i < len(d.ports); i++ {
		for j := i; j > 0 && d.ports[j-1].priority < d.ports[j].priority; j-- {
			d.ports[j-1], d.ports[j] = d.ports[j], d.ports[j-1]
		}
	}
	d.table = nil
}

// reorder moves busier filters earlier within each equal-priority
// group (§3.2).
func (d *Device) reorder() {
	for i := 1; i < len(d.ports); i++ {
		for j := i; j > 0 &&
			d.ports[j-1].priority == d.ports[j].priority &&
			d.ports[j-1].matches < d.ports[j].matches; j-- {
			d.ports[j-1], d.ports[j] = d.ports[j], d.ports[j-1]
		}
	}
}

// Errors returned by port operations.
var (
	ErrTimeout    = errors.New("pfdev: read timed out")
	ErrClosed     = errors.New("pfdev: port closed")
	ErrNoFilter   = errors.New("pfdev: no filter bound")
	ErrWouldBlock = errors.New("pfdev: no packet queued")
	ErrPriority   = errors.New("pfdev: priority reserved for privileged ports")
)
