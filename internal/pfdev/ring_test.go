package pfdev

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/ethersim"
	"repro/internal/shm"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// mapTestRing maps a fresh segment sized for slots receive slots onto
// the port and returns it.
func mapTestRing(t *testing.T, p *sim.Proc, port *Port, slots int) *shm.Segment {
	t.Helper()
	reg := shm.NewRegistry(port.dev.host)
	seg, err := reg.Map(p, "ring", port.RingLayoutSize(slots))
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	if err := port.MapRing(p, seg, slots); err != nil {
		t.Fatalf("MapRing: %v", err)
	}
	return seg
}

func TestRingReapDeliversInPlace(t *testing.T) {
	r := newRig(t, Options{})
	const n = 5
	var got [][]byte
	var stats PortStats
	var seg *shm.Segment
	r.s.Spawn(r.hb, "recv", func(p *sim.Proc) {
		port := r.db.Open(p)
		port.SetFilter(p, socketFilter(10, 35))
		port.SetTimeout(p, 50*time.Millisecond)
		seg = mapTestRing(t, p, port, 8)
		for len(got) < n {
			batch, err := port.ReapBatch(p)
			if err != nil {
				t.Errorf("ReapBatch: %v", err)
				return
			}
			for _, pkt := range batch {
				got = append(got, append([]byte(nil), pkt.Data...))
			}
		}
		stats = port.Stats()
	})
	r.s.Spawn(r.ha, "send", func(p *sim.Proc) {
		port := r.da.Open(p)
		p.Sleep(time.Millisecond)
		for i := 0; i < n; i++ {
			port.Write(p, pupTo(2, 1, uint8(i+1), 35))
			p.Sleep(time.Millisecond)
		}
	})
	r.s.Run(0)

	if len(got) != n {
		t.Fatalf("delivered %d packets, want %d", len(got), n)
	}
	var total uint64
	for i, frame := range got {
		if frame[7] != byte(i+1) { // Pup type byte under the 4-byte link header
			t.Errorf("packet %d has pup type %d", i, frame[7])
		}
		total += uint64(len(frame))
	}
	if stats.RingReaps == 0 || stats.ReapPackets != n {
		t.Errorf("ring stats: reaps=%d reaped=%d", stats.RingReaps, stats.ReapPackets)
	}
	if stats.BytesMapped != total {
		t.Errorf("BytesMapped = %d, want %d", stats.BytesMapped, total)
	}
	if stats.BytesCopied != 0 {
		t.Errorf("BytesCopied = %d, want 0 (nothing should cross the boundary)", stats.BytesCopied)
	}
	if stats.BatchReads != 0 {
		t.Errorf("BatchReads = %d, want 0 (delivery went through the ring)", stats.BatchReads)
	}
	if seg.Stats.BytesIn != total {
		t.Errorf("segment BytesIn = %d, want %d", seg.Stats.BytesIn, total)
	}
	if r.hb.Counters.BytesMapped != total {
		t.Errorf("host BytesMapped = %d, want %d", r.hb.Counters.BytesMapped, total)
	}
}

// TestReapWithoutRingIsReadBatch pins the fallback: on a port with no
// segment mapped, ReapBatch charges and counts exactly like ReadBatch.
func TestReapWithoutRingIsReadBatch(t *testing.T) {
	deliver := func(reap bool) (PortStats, vtime.Counters) {
		r := newRig(t, Options{})
		var stats PortStats
		r.s.Spawn(r.hb, "recv", func(p *sim.Proc) {
			port := r.db.Open(p)
			port.SetFilter(p, socketFilter(10, 35))
			port.SetTimeout(p, 50*time.Millisecond)
			var batch []Packet
			var err error
			if reap {
				batch, err = port.ReapBatch(p)
			} else {
				batch, err = port.ReadBatch(p)
			}
			if err != nil || len(batch) != 1 {
				t.Errorf("drain(reap=%v) = (%d, %v)", reap, len(batch), err)
			}
			stats = port.Stats()
		})
		r.s.Spawn(r.ha, "send", func(p *sim.Proc) {
			port := r.da.Open(p)
			p.Sleep(time.Millisecond)
			port.Write(p, pupTo(2, 1, 1, 35))
		})
		r.s.Run(0)
		return stats, r.hb.Counters
	}

	reapStats, reapCounters := deliver(true)
	readStats, readCounters := deliver(false)
	if reapStats.RingReaps != 0 || reapStats.BytesMapped != 0 {
		t.Errorf("fallback reap counted ring activity: %+v", reapStats)
	}
	if reapStats.BytesCopied != readStats.BytesCopied || reapStats.BatchPackets != readStats.BatchPackets {
		t.Errorf("fallback reap stats %+v != read stats %+v", reapStats, readStats)
	}
	if reapCounters != readCounters {
		t.Errorf("fallback reap host counters differ:\n%+v\n%+v", reapCounters, readCounters)
	}
}

func TestRingTransmitHostileDescriptors(t *testing.T) {
	r := newRig(t, Options{})
	var stats PortStats
	received := 0
	r.s.Spawn(r.hb, "recv", func(p *sim.Proc) {
		port := r.db.Open(p)
		port.SetFilter(p, socketFilter(10, 35))
		port.SetTimeout(p, 30*time.Millisecond)
		for {
			if _, err := port.Read(p); err != nil {
				return
			}
			received++
		}
	})
	r.s.Spawn(r.ha, "send", func(p *sim.Proc) {
		port := r.da.Open(p)
		seg := mapTestRing(t, p, port, 4)
		segSize := uint32(seg.Size())

		// A good frame staged in the arena, referenced by hand.
		frame := pupTo(2, 1, 1, 35)
		base := uint32(port.ring.txBase)
		copy(seg.Bytes()[base:], frame)
		good := shm.Desc{Off: base, Len: uint32(len(frame))}

		hostiles := [][]byte{
			good.Encode(nil)[:shm.DescSize-1],                       // truncated block
			shm.Desc{Off: segSize, Len: 64}.Encode(nil),             // past the end
			shm.Desc{Off: 0xFFFFFFF0, Len: 0x40}.Encode(nil),        // 32-bit wrap attempt
			shm.Desc{Off: 0, Len: 0}.Encode(nil),                    // empty frame
			shm.Desc{Off: 0, Len: segSize + 1}.Encode(nil),          // larger than segment
			shm.Desc{Off: 0, Len: 1 << 30}.Encode(nil),              // larger than any frame
			good.Encode(shm.Desc{Off: segSize, Len: 8}.Encode(nil)), // bad first, good second
			{0, 0, 0, 0, 0, 0, 0, 64, 0xFF, 0xFF, 0xBE, 0xEF},       // reserved bits set
		}
		for i, raw := range hostiles {
			if err := port.RingTransmit(p, raw); !errors.Is(err, ErrBadDesc) {
				t.Errorf("hostile %d: RingTransmit = %v, want ErrBadDesc", i, err)
			}
		}
		// The port must still work for honest descriptors.
		if err := port.RingTransmit(p, good.Encode(nil)); err != nil {
			t.Errorf("honest RingTransmit after hostility: %v", err)
		}
		stats = port.Stats()
	})
	r.s.Run(0)

	if received != 1 {
		t.Errorf("received %d frames, want exactly the honest one", received)
	}
	if stats.DescErrors != 8 {
		t.Errorf("DescErrors = %d, want 8", stats.DescErrors)
	}
}

func TestRingMappingGuards(t *testing.T) {
	r := newRig(t, Options{})
	r.s.Spawn(r.hb, "procB", func(p *sim.Proc) {
		portA := r.db.Open(p)
		portB := r.db.Open(p)
		reg := shm.NewRegistry(r.hb)
		seg, err := reg.Map(p, "seg", portA.RingLayoutSize(4))
		if err != nil {
			t.Errorf("Map: %v", err)
			return
		}
		if err := portA.MapRing(p, seg, 4); err != nil {
			t.Errorf("first MapRing: %v", err)
		}
		// Another port must not be able to alias the same segment.
		if err := portB.MapRing(p, seg, 4); !errors.Is(err, shm.ErrBusy) {
			t.Errorf("aliasing MapRing = %v, want shm.ErrBusy", err)
		}
		// Undersized segments and zero slots are rejected.
		small, _ := reg.Map(p, "small", 64)
		if err := portB.MapRing(p, small, 4); !errors.Is(err, ErrRingSize) {
			t.Errorf("undersized MapRing = %v, want ErrRingSize", err)
		}
		if err := portB.MapRing(p, small, 0); !errors.Is(err, ErrRingSlots) {
			t.Errorf("zero-slot MapRing = %v, want ErrRingSlots", err)
		}
		// Unmapping frees the segment for another port.
		portA.UnmapRing(p)
		if err := portB.MapRing(p, seg, 4); err != nil {
			t.Errorf("MapRing after UnmapRing: %v", err)
		}
	})
	r.s.Spawn(r.ha, "procA", func(p *sim.Proc) {
		// A segment registered with another host's kernel is refused.
		port := r.da.Open(p)
		regB := shm.NewRegistry(r.hb)
		segB, err := regB.Map(p, "foreign", port.RingLayoutSize(4))
		if err != nil {
			t.Errorf("Map: %v", err)
			return
		}
		if err := port.MapRing(p, segB, 4); !errors.Is(err, ErrRingHost) {
			t.Errorf("cross-host MapRing = %v, want ErrRingHost", err)
		}
	})
	r.s.Run(0)
}

func TestRingDetachesOnCrashAndClose(t *testing.T) {
	r := newRig(t, Options{})
	var seg *shm.Segment
	var port *Port
	r.s.Spawn(r.hb, "recv", func(p *sim.Proc) {
		port = r.db.Open(p)
		port.SetFilter(p, socketFilter(10, 35))
		seg = mapTestRing(t, p, port, 4)
	})
	r.s.Run(0)
	if seg.Attached() == nil {
		t.Fatal("segment not attached after MapRing")
	}
	r.hb.Crash()
	r.s.Run(0)
	if seg.Attached() != nil {
		t.Error("crash left the segment attached")
	}
	if !seg.Mapped() {
		t.Error("crash unmapped user memory; the segment should survive")
	}
	r.hb.Restart()
	// The surviving segment can back a fresh port's ring.
	r.s.Spawn(r.hb, "recover", func(p *sim.Proc) {
		np := r.db.Open(p)
		np.SetFilter(p, socketFilter(10, 35))
		if err := np.MapRing(p, seg, 4); err != nil {
			t.Errorf("re-MapRing after crash: %v", err)
		}
		np.Close(p)
	})
	r.s.Run(0)
	if seg.Attached() != nil {
		t.Error("Close left the segment attached")
	}
}

// TestRingStatsCrossCheck reconciles the per-port statistics blocks
// against the tracer's registry the same way the fault ledger is
// reconciled: the sums must agree exactly.
func TestRingStatsCrossCheck(t *testing.T) {
	s := sim.New(vtime.DefaultCosts())
	tr := trace.New()
	s.SetTracer(tr)
	net := ethersim.New(s, ethersim.Ether3Mb)
	ha, hb := s.NewHost("a"), s.NewHost("b")
	na, nb := net.Attach(ha, 1), net.Attach(hb, 2)
	da, db := Attach(na, nil, Options{}), Attach(nb, nil, Options{})

	const n = 6
	// One ring reader and one copying reader on the same device.
	r1 := make(chan struct{})
	s.Spawn(hb, "ring-reader", func(p *sim.Proc) {
		port := db.Open(p)
		port.SetFilter(p, socketFilter(10, 35))
		port.SetTimeout(p, 50*time.Millisecond)
		mapTestRing(t, p, port, 8)
		got := 0
		for got < n {
			batch, err := port.ReapBatch(p)
			if err != nil {
				break
			}
			got += len(batch)
		}
		close(r1)
	})
	s.Spawn(hb, "copy-reader", func(p *sim.Proc) {
		port := db.Open(p)
		port.SetFilter(p, socketFilter(10, 36))
		port.SetTimeout(p, 50*time.Millisecond)
		got := 0
		for got < n {
			batch, err := port.ReadBatch(p)
			if err != nil {
				break
			}
			got += len(batch)
		}
	})
	s.Spawn(ha, "send", func(p *sim.Proc) {
		port := da.Open(p)
		p.Sleep(time.Millisecond)
		for i := 0; i < n; i++ {
			port.Write(p, pupTo(2, 1, 1, 35))
			port.Write(p, pupTo(2, 1, 1, 36))
			p.Sleep(time.Millisecond)
		}
	})
	s.Run(0)
	<-r1

	var wantMapped, wantCopiedB, wantReaps uint64
	var portsB []PortStats
	s.Spawn(hb, "stat", func(p *sim.Proc) { portsB = db.PortStats(p) })
	s.Run(0)
	for _, ps := range portsB {
		wantMapped += ps.BytesMapped
		wantCopiedB += ps.BytesCopied
		wantReaps += ps.RingReaps
	}
	if wantMapped == 0 || wantCopiedB == 0 {
		t.Fatalf("test did not exercise both paths: mapped=%d copied=%d", wantMapped, wantCopiedB)
	}
	if got := tr.Counter("b", "pf.mapped_bytes").Value(); got != wantMapped {
		t.Errorf("tracer pf.mapped_bytes = %d, port stats sum = %d", got, wantMapped)
	}
	if got := tr.Counter("b", "pf.copied_bytes").Value(); got != wantCopiedB {
		t.Errorf("tracer pf.copied_bytes = %d, port stats sum = %d", got, wantCopiedB)
	}
	if got := tr.Counter("b", "pf.ring_reaps").Value(); got != wantReaps {
		t.Errorf("tracer pf.ring_reaps = %d, port stats sum = %d", got, wantReaps)
	}
	if got := hb.Counters.RingReaps; got != wantReaps {
		t.Errorf("host RingReaps = %d, port stats sum = %d", got, wantReaps)
	}
	if got := hb.Counters.BytesMapped; got != wantMapped {
		t.Errorf("host BytesMapped = %d, port stats sum = %d", got, wantMapped)
	}
}

// TestWriteRingRoundTrip sends through the transmit ring and checks
// the receiver sees exactly the frames the sender staged, with the
// sender's bytes accounted as mapped, not copied.
func TestWriteRingRoundTrip(t *testing.T) {
	r := newRig(t, Options{})
	var got [][]byte
	var sendStats PortStats
	r.s.Spawn(r.hb, "recv", func(p *sim.Proc) {
		port := r.db.Open(p)
		port.SetFilter(p, socketFilter(10, 35))
		port.SetTimeout(p, 30*time.Millisecond)
		for {
			pkt, err := port.Read(p)
			if err != nil {
				return
			}
			got = append(got, pkt.Data)
		}
	})
	frames := [][]byte{pupTo(2, 1, 1, 35), pupTo(2, 1, 2, 35), pupTo(2, 1, 3, 35)}
	r.s.Spawn(r.ha, "send", func(p *sim.Proc) {
		port := r.da.Open(p)
		mapTestRing(t, p, port, 4)
		if err := port.WriteRing(p, frames); err != nil {
			t.Errorf("WriteRing: %v", err)
		}
		// Rewriting the arena after the call must not corrupt what
		// was sent: the kernel snapshots at transmit time.
		for i := range port.ring.seg.Bytes() {
			port.ring.seg.Bytes()[i] = 0xEE
		}
		sendStats = port.Stats()
	})
	r.s.Run(0)

	if len(got) != len(frames) {
		t.Fatalf("received %d frames, want %d", len(got), len(frames))
	}
	var total uint64
	for i := range frames {
		if !bytes.Equal(got[i], frames[i]) {
			t.Errorf("frame %d mangled: %x vs %x", i, got[i], frames[i])
		}
		total += uint64(len(frames[i]))
	}
	if sendStats.BytesMapped != total {
		t.Errorf("sender BytesMapped = %d, want %d", sendStats.BytesMapped, total)
	}
	if sendStats.BytesCopied != 0 {
		t.Errorf("sender BytesCopied = %d, want 0", sendStats.BytesCopied)
	}
}
