package pfdev

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/ethersim"
	"repro/internal/filter"
	"repro/internal/parsim"
	"repro/internal/sim"
	"repro/internal/vtime"
)

// equivSpec is one randomly drawn port configuration, bound
// identically on the linear-mode and table-mode devices.
type equivSpec struct {
	f       filter.Filter
	copyAll bool
}

// randSpec draws a port spec: priorities from a small range so ties
// are common, a mix of decision-table-compatible filters (socket
// conjunctions), linear fallbacks (OR programs, reject-all) and
// wildcard accept-alls, and a copy-all coin.
func randSpec(rng *rand.Rand) equivSpec {
	prio := uint8(rng.Intn(3)) + 1
	var f filter.Filter
	switch rng.Intn(6) {
	case 0, 1, 2: // extractable conjunction (tree path)
		f = filter.DstSocketFilter(prio, uint32(35+rng.Intn(3)))
	case 3: // OR program: accepts two sockets, linear fallback
		a, b := uint16(35+rng.Intn(3)), uint16(35+rng.Intn(3))
		f = filter.Filter{Priority: prio, Program: filter.NewBuilder().
			PushWord(8).PushLit(a).Op(filter.EQ).
			PushWord(8).PushLit(b).Op(filter.EQ).
			Or().MustProgram()}
	case 4: // reject-all: constant false, linear fallback
		f = filter.Filter{Priority: prio, Program: filter.NewBuilder().RejectAll().MustProgram()}
	default: // accept-all wildcard (tree path)
		f = filter.Filter{Priority: prio, Program: filter.NewBuilder().AcceptAll().MustProgram()}
	}
	return equivSpec{f: f, copyAll: rng.Intn(3) == 0}
}

// equivRun drives one randomized traffic schedule at two receiver
// hosts with identical port sets — one device in EvalChecked (linear)
// mode, one in EvalTable mode — and reports whether every port slot
// received the identical packet sequence.  Reorder churn is on, one
// port is closed and reopened mid-run during a traffic gap, and the
// whole run is repeated with interrupt coalescing on or off.
func equivRun(t *testing.T, seed int64, budget int, delay time.Duration) (bool, int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))

	nPorts := 2 + rng.Intn(4)
	specs := make([]equivSpec, nPorts)
	for i := range specs {
		specs[i] = randSpec(rng)
	}
	const nFrames = 36
	sockets := make([]uint32, nFrames)
	gaps := make([]time.Duration, nFrames)
	for i := range sockets {
		sockets[i] = uint32(34 + rng.Intn(5)) // some match nothing
		gaps[i] = time.Duration(rng.Intn(1500)) * time.Microsecond
	}
	churnIdx := rng.Intn(nPorts)

	s := sim.New(vtime.DefaultCosts())
	net := ethersim.New(s, ethersim.Ether3Mb)
	hs := s.NewHost("src")
	hl := s.NewHost("linear")
	ht := s.NewHost("table")
	ns := net.Attach(hs, 1)
	nl := net.Attach(hl, 2)
	nt := net.Attach(ht, 3)
	nl.QueueLimit = 4 * nFrames
	nt.QueueLimit = 4 * nFrames
	mkOpt := func(mode EvalMode) Options {
		return Options{Mode: mode, Reorder: true, ReorderEvery: 8,
			CoalesceBudget: budget, CoalesceDelay: delay}
	}
	dl := Attach(nl, nil, mkOpt(EvalChecked))
	dt := Attach(nt, nil, mkOpt(EvalTable))

	// The churn sits deep inside a long traffic gap: the two hosts'
	// kernels charge different filter costs, so their backlogs drain
	// at different rates, and the close/reopen must not race any
	// frame's delivery on either host.  120 ms comfortably exceeds
	// the worst-case drain of a whole half's backlog.
	const half = nFrames / 2
	const quiet = 200 * time.Millisecond
	churnTime := 10 * time.Millisecond
	for i := 0; i < half; i++ {
		churnTime += gaps[i]
	}
	churnTime += 120 * time.Millisecond

	open := func(p *sim.Proc, d *Device, spec equivSpec) *Port {
		port := d.Open(p)
		if err := port.SetFilter(p, spec.f); err != nil {
			t.Errorf("seed %d: SetFilter: %v", seed, err)
		}
		port.SetQueueLimit(p, 4*nFrames)
		port.SetCopyAll(p, spec.copyAll)
		return port
	}
	slotsL := make([]*Port, nPorts)
	slotsT := make([]*Port, nPorts)
	ctl := func(d *Device, slots []*Port) func(*sim.Proc) {
		return func(p *sim.Proc) {
			for i := range specs {
				slots[i] = open(p, d, specs[i])
			}
			p.Sleep(churnTime - p.Now())
			slots[churnIdx].Close(p)
			slots[churnIdx] = open(p, d, specs[churnIdx])
		}
	}
	s.Spawn(hl, "ctl", ctl(dl, slotsL))
	s.Spawn(ht, "ctl", ctl(dt, slotsT))
	s.Spawn(hs, "src", func(p *sim.Proc) {
		p.Sleep(10 * time.Millisecond) // let the receivers finish setup
		bcast := ethersim.Ether3Mb.BroadcastAddr()
		for i := 0; i < nFrames; i++ {
			if i == half {
				p.Sleep(quiet) // churn happens in here
			}
			frame := pupTo(bcast, 1, 1, sockets[i])
			// Tag the frame with its sequence number in a payload word
			// no filter inspects, so delivered sequences are comparable.
			frame[4+16] = byte(i)
			ns.Transmit(frame)
			p.Sleep(gaps[i])
		}
	})
	s.Run(2 * time.Second)

	ok := true
	delivered := 0
	for i := 0; i < nPorts; i++ {
		seqOf := func(port *Port) []byte {
			var seq []byte
			for _, pkt := range port.queued() {
				seq = append(seq, pkt.Data[4+16])
			}
			return seq
		}
		l, tt := seqOf(slotsL[i]), seqOf(slotsT[i])
		delivered += len(l)
		if fmt.Sprint(l) != fmt.Sprint(tt) {
			t.Logf("seed %d slot %d: linear delivered %v, table delivered %v", seed, i, l, tt)
			ok = false
		}
	}
	return ok, delivered
}

// TestLinearTableEquivalenceQuick is the satellite property: under
// random filter sets with copy-all, priority ties, a close/reopen and
// reorder churn, EvalChecked and EvalTable deliver identical
// accepted-port packet sequences — with and without coalescing.
//
// The 18 trial seeds are pre-drawn from a pinned source (the role
// testing/quick's Config.Rand used to play) and the independent trials
// run on the parsim worker pool; each builds its own pair of simulation
// universes, so trials are isolated and results are collected in
// deterministic trial order.
func TestLinearTableEquivalenceQuick(t *testing.T) {
	for _, co := range []struct {
		name   string
		budget int
		delay  time.Duration
	}{
		{"nocoalesce", 0, 0},
		{"coalesce", 4, 2 * time.Millisecond},
	} {
		t.Run(co.name, func(t *testing.T) {
			const trials = 18
			rng := rand.New(rand.NewSource(7))
			seeds := make([]int64, trials)
			for i := range seeds {
				seeds[i] = rng.Int63()
			}
			type outcome struct {
				ok        bool
				delivered int
			}
			results := parsim.Map(trials, 0, func(i int) outcome {
				ok, n := equivRun(t, seeds[i], co.budget, co.delay)
				return outcome{ok, n}
			})
			delivered := 0
			for i, r := range results {
				if !r.ok {
					t.Errorf("property falsified for seed %d (trial %d)", seeds[i], i)
				}
				delivered += r.delivered
			}
			if delivered == 0 {
				t.Fatal("property held vacuously: no frames were delivered in any run")
			}
		})
	}
}
