//go:build !race

package pfdev

// raceEnabled gates allocation assertions; see race_test.go.
const raceEnabled = false
