package pfdev

import (
	"testing"
	"time"

	"repro/internal/ethersim"
	"repro/internal/filter"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// burnFilter is the maximum-length always-reject program: every frame
// charges MaxProgramLen instruction units and falls through to the
// next port — the worst legal filter the language admits.
func burnFilter(prio uint8) filter.Filter {
	p := filter.MaxInstrsProgram()
	p[len(p)-1] = filter.MkInstr(filter.PUSHZERO, filter.AND)
	return filter.Filter{Priority: prio, Program: p}
}

// tightGov is a governor calibrated so a burn filter is over budget
// within a few frames while a socket filter never is.
func tightGov() GovConfig {
	return GovConfig{
		Enabled:        true,
		Rate:           20000,
		Burst:          300,
		QuarantineBase: 10 * time.Millisecond,
		QuarantineMax:  80 * time.Millisecond,
		QuarantineCool: 50 * time.Millisecond,
		AdmissionHigh:  100000, // effectively off for quarantine tests
		AdmissionLow:   1000,
	}
}

// govScenario runs a hostile-plus-victim rig: a high-priority burn
// filter ahead of a victim socket-35 port, with n frames paced at
// interval.  Returns the two ports' stats and the device.
func govScenario(t *testing.T, opt Options, n int, interval time.Duration) (victim, hostile PortStats, dev *Device) {
	t.Helper()
	r := newRig(t, opt)
	var vp, hp *Port
	var sender *Port
	var vGot int
	// Phase 1: bind everything while the wire is quiet.  Once the burn
	// filter starts charging, the kernel is saturated and user syscalls
	// starve — setup racing the storm would leave the victim half
	// configured for most of the run.
	r.s.Spawn(r.hb, "setup", func(p *sim.Proc) {
		vp = r.db.Open(p)
		if err := vp.SetFilter(p, socketFilter(10, 35)); err != nil {
			t.Error(err)
			return
		}
		vp.SetQueueLimit(p, 4*n)
		vp.SetTimeout(p, 20*time.Millisecond)
		hp = r.db.Open(p)
		if err := hp.SetFilter(p, burnFilter(20)); err != nil {
			t.Error(err)
		}
	})
	r.s.Spawn(r.ha, "setup", func(p *sim.Proc) {
		sender = r.da.Open(p)
	})
	r.s.Run(0)

	r.s.Spawn(r.hb, "victim", func(p *sim.Proc) {
		idle := 0
		for idle < 2 {
			if _, err := vp.Read(p); err != nil {
				idle++
			} else {
				idle = 0
				vGot++
			}
		}
	})
	r.s.Spawn(r.ha, "send", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		for i := 0; i < n; i++ {
			if err := sender.Write(p, pupTo(2, 1, 1, 35)); err != nil {
				t.Error(err)
				return
			}
			p.Sleep(interval)
		}
	})
	r.s.Run(0)
	if vGot != n {
		t.Fatalf("victim read %d of %d frames", vGot, n)
	}
	return vp.Stats(), hp.Stats(), r.db
}

// TestQuarantineIsolatesHostilePort checks the token bucket end to
// end: the burn filter is quarantined with doubling backoff, its
// evaluations stop being charged, and the victim port — whose cheap
// filter stays within budget — receives every frame and is never
// governed.
func TestQuarantineIsolatesHostilePort(t *testing.T) {
	const n = 60
	victim, hostile, _ := govScenario(t, Options{Gov: tightGov()}, n, time.Millisecond)

	if hostile.Quarantines < 2 {
		t.Errorf("hostile port quarantined %d times, want repeated offense", hostile.Quarantines)
	}
	if hostile.QuarantineSkips < n/2 {
		t.Errorf("hostile filter skipped only %d of %d scans", hostile.QuarantineSkips, n)
	}
	if hostile.FuelSpent == 0 {
		t.Errorf("hostile port charged no fuel; admissions never happened")
	}
	// Fuel can never exceed what the bucket could ever hold: the
	// initial burst plus the whole run's refill.
	cfg := tightGov()
	if max := uint64(cfg.Burst) + uint64(cfg.Rate); hostile.FuelSpent > max {
		t.Errorf("hostile fuel %d exceeds bucket capacity bound %d", hostile.FuelSpent, max)
	}
	if victim.Quarantines != 0 || victim.QuarantineSkips != 0 {
		t.Errorf("victim port governed: %d quarantines, %d skips",
			victim.Quarantines, victim.QuarantineSkips)
	}
	if victim.Matched != n {
		t.Errorf("victim matched %d of %d", victim.Matched, n)
	}
	if victim.AvgResidency <= 0 {
		t.Errorf("victim residency accounting dead: %v", victim.AvgResidency)
	}
}

// TestQuarantineBackoffDoubles reads the backoff state directly: a
// port re-offending promptly after each penalty window must see its
// window double up to the cap, and a long clean spell must reset it.
func TestQuarantineBackoffDoubles(t *testing.T) {
	s := sim.New(vtime.DefaultCosts())
	net := ethersim.New(s, ethersim.Ether3Mb)
	ha := s.NewHost("a")
	na := net.Attach(ha, 1)
	cfg := tightGov()
	d := Attach(na, nil, Options{Gov: cfg})
	var port *Port
	s.Spawn(ha, "ctl", func(p *sim.Proc) {
		port = d.Open(p)
		if err := port.SetFilter(p, burnFilter(10)); err != nil {
			t.Error(err)
		}
	})
	s.Run(0)

	port.govTokens = 0
	now := s.Now()
	want := cfg.QuarantineBase
	for i := 0; i < 5; i++ {
		if port.govAdmit(now, &d.opt.Gov) {
			t.Fatalf("offense %d: admitted with an empty bucket", i)
		}
		if port.quarPenalty != want {
			t.Fatalf("offense %d: penalty %v, want %v", i, port.quarPenalty, want)
		}
		// Re-offend immediately after the window expires; drain the
		// refill the elapsed window earned so the bucket stays empty.
		now = port.quarUntil + time.Millisecond
		port.govRefillNow(now, &d.opt.Gov)
		port.govTokens = 0
		if want *= 2; want > cfg.QuarantineMax {
			want = cfg.QuarantineMax
		}
	}
	// A clean spell past QuarantineCool earns a fresh base penalty.
	now = port.quarUntil + cfg.QuarantineCool + time.Millisecond
	port.govRefillNow(now, &d.opt.Gov)
	port.govTokens = 0
	if port.govAdmit(now, &d.opt.Gov) {
		t.Fatal("admitted with an empty bucket after cool-down")
	}
	if port.quarPenalty != cfg.QuarantineBase {
		t.Fatalf("penalty after cool-down = %v, want reset to %v", port.quarPenalty, cfg.QuarantineBase)
	}
}

// TestDropQuotaAttribution pins the taxonomy rule in both match
// engines: a frame that matches nothing while a quarantined filter was
// skipped dies as DropQuota (the governor's verdict), one that matches
// nothing with every filter heard dies as DropNoMatch — and the span
// ledger conserves exactly either way.
func TestDropQuotaAttribution(t *testing.T) {
	for _, mode := range []EvalMode{EvalChecked, EvalTable} {
		s := sim.New(vtime.DefaultCosts())
		tr := trace.New()
		sp := tr.EnableSpans(trace.SpanConfig{Ring: 512})
		s.SetTracer(tr)
		net := ethersim.New(s, ethersim.Ether3Mb)
		ha := s.NewHost("a")
		na := net.Attach(ha, 1)
		d := Attach(na, nil, Options{Mode: mode, Gov: tightGov()})
		var victim, hostile *Port
		s.Spawn(ha, "ctl", func(p *sim.Proc) {
			victim = d.Open(p)
			if err := victim.SetFilter(p, socketFilter(10, 35)); err != nil {
				t.Error(err)
			}
			victim.SetQueueLimit(p, 1<<16)
			hostile = d.Open(p)
			if err := hostile.SetFilter(p, burnFilter(20)); err != nil {
				t.Error(err)
			}
		})
		s.Run(0)

		miss := pupTo(1, 2, 1, 99)
		inject := func() {
			span := tr.SpanOrigin(s.Now(), "a")
			d.inputSpanned(miss, span)
			s.Run(0)
		}
		// Before the bucket drains every miss is a clean no-match.
		inject()
		if sp.Drops[trace.DropNoMatch] == 0 {
			t.Fatalf("mode %v: first miss not DropNoMatch", mode)
		}
		// Drain the burn port's bucket and let it quarantine; misses
		// scanned with its filter skipped must switch to DropQuota.
		for i := 0; i < 40; i++ {
			inject()
		}
		if sp.Drops[trace.DropQuota] == 0 {
			t.Errorf("mode %v: no DropQuota despite quarantine (quarantines=%d)",
				mode, hostile.Stats().Quarantines)
		}
		if hostile.Stats().Quarantines == 0 {
			t.Errorf("mode %v: burn port never quarantined", mode)
		}
		if victim.Stats().Quarantines != 0 {
			t.Errorf("mode %v: victim quarantined", mode)
		}
		if got, want := sp.Created, sp.DeliveredUser+sp.DeliveredKernel+sp.TotalDrops()+sp.Live(); got != want {
			t.Errorf("mode %v: conservation broken: created=%d accounted=%d", mode, got, want)
		}
	}
}

// TestAdmissionHysteresis checks the overload controller: input is
// shed as DropAdmission once the backlog crosses the high watermark,
// admission resumes only after it drains below the low one, and the
// ledger conserves through the whole episode.
func TestAdmissionHysteresis(t *testing.T) {
	s := sim.New(vtime.DefaultCosts())
	tr := trace.New()
	sp := tr.EnableSpans(trace.SpanConfig{Ring: 512})
	s.SetTracer(tr)
	net := ethersim.New(s, ethersim.Ether3Mb)
	ha := s.NewHost("a")
	na := net.Attach(ha, 1)
	gov := GovConfig{
		Enabled: true,
		Rate:    1e9, Burst: 1 << 30, // quarantine effectively off
		AdmissionHigh: 8, AdmissionLow: 3,
	}
	d := Attach(na, nil, Options{Gov: gov})
	var port *Port
	s.Spawn(ha, "ctl", func(p *sim.Proc) {
		port = d.Open(p)
		if err := port.SetFilter(p, socketFilter(10, 35)); err != nil {
			t.Error(err)
		}
		port.SetQueueLimit(p, 1<<16)
	})
	s.Run(0)

	match := pupTo(1, 2, 1, 35)
	inject := func() {
		span := tr.SpanOrigin(s.Now(), "a")
		d.inputSpanned(match, span)
		s.Run(0)
	}
	// Nobody reads: the backlog climbs one packet per frame until the
	// high watermark trips.
	for i := 0; i < 20; i++ {
		inject()
	}
	if !d.shedding {
		t.Fatal("controller not shedding at backlog 20 >> high watermark 8")
	}
	if port.qlen() != gov.AdmissionHigh {
		t.Errorf("queue grew to %d; admission should have capped it at %d",
			port.qlen(), gov.AdmissionHigh)
	}
	sheds := sp.Drops[trace.DropAdmission]
	if sheds == 0 {
		t.Fatal("no DropAdmission despite shedding")
	}
	// Draining to one above the low watermark must not reopen intake…
	for port.qlen() > gov.AdmissionLow+1 {
		port.queued()[0] = Packet{}
		port.popFront(1)
	}
	inject()
	if !d.shedding {
		t.Fatal("controller reopened above the low watermark (hysteresis broken)")
	}
	// …but reaching it must: the next frame is admitted and enqueued.
	port.popFront(1)
	inject()
	if d.shedding {
		t.Fatal("controller still shedding at the low watermark")
	}
	if port.qlen() != gov.AdmissionLow+1 {
		t.Errorf("post-recovery qlen = %d, want %d", port.qlen(), gov.AdmissionLow+1)
	}
	gs := GovStats{}
	s.Spawn(ha, "stat", func(p *sim.Proc) { gs = d.GovStats(p) })
	s.Run(0)
	if gs.AdmissionSheds != sp.Drops[trace.DropAdmission] {
		t.Errorf("GovStats sheds %d, taxonomy %d", gs.AdmissionSheds, sp.Drops[trace.DropAdmission])
	}
	if got, want := sp.Created, sp.DeliveredUser+sp.DeliveredKernel+sp.TotalDrops()+sp.Live(); got != want {
		t.Errorf("conservation broken: created=%d accounted=%d", got, want)
	}
}

// TestGovernedRunDeterministic pins that the governed device is as
// deterministic as the ungoverned one: two identical hostile-storm
// runs agree on every statistic the governor produces.
func TestGovernedRunDeterministic(t *testing.T) {
	v1, h1, _ := govScenario(t, Options{Gov: tightGov()}, 40, time.Millisecond)
	v2, h2, _ := govScenario(t, Options{Gov: tightGov()}, 40, time.Millisecond)
	if v1 != v2 {
		t.Errorf("victim stats diverge:\n  %+v\n  %+v", v1, v2)
	}
	if h1 != h2 {
		t.Errorf("hostile stats diverge:\n  %+v\n  %+v", h1, h2)
	}
}

// TestGenerousGovernorIsInvisible checks the acceptance criterion that
// a clean workload under an over-provisioned governor behaves
// identically to an ungoverned one: same virtual end time, same
// delivery counts, no governance events.
func TestGenerousGovernorIsInvisible(t *testing.T) {
	run := func(opt Options) (time.Duration, uint64) {
		r := newRig(t, opt)
		var got uint64
		r.s.Spawn(r.hb, "recv", func(p *sim.Proc) {
			port := r.db.Open(p)
			port.SetFilter(p, socketFilter(10, 35))
			port.SetTimeout(p, 10*time.Millisecond)
			idle := 0
			for idle < 2 {
				if _, err := port.Read(p); err != nil {
					idle++
				} else {
					idle = 0
					got++
				}
			}
		})
		r.s.Spawn(r.ha, "send", func(p *sim.Proc) {
			port := r.da.Open(p)
			p.Sleep(time.Millisecond)
			for i := 0; i < 25; i++ {
				port.Write(p, pupTo(2, 1, 1, 35))
				p.Sleep(500 * time.Microsecond)
			}
		})
		end := r.s.Run(0)
		return end, got
	}
	endOff, gotOff := run(Options{})
	endOn, gotOn := run(Options{Gov: GovConfig{Enabled: true}}) // defaults: generous for 25 paced frames
	if gotOff != 25 || gotOn != 25 {
		t.Fatalf("deliveries: off=%d on=%d, want 25", gotOff, gotOn)
	}
	if endOff != endOn {
		t.Errorf("virtual end time differs: off=%v on=%v — governor touched the clean path", endOff, endOn)
	}
}

// TestGovernedReceivePathAllocationFree re-pins the zero-allocation
// property with the governor enabled: token refill, admission checks
// and backlog accounting must add no garbage to the steady state.
func TestGovernedReceivePathAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc pins only run without -race")
	}
	s := sim.New(vtime.DefaultCosts())
	net := ethersim.New(s, ethersim.Ether3Mb)
	ha := s.NewHost("a")
	na := net.Attach(ha, 1)
	d := Attach(na, nil, Options{Gov: GovConfig{Enabled: true}})
	var port *Port
	s.Spawn(ha, "ctl", func(p *sim.Proc) {
		port = d.Open(p)
		if err := port.SetFilter(p, socketFilter(10, 35)); err != nil {
			t.Error(err)
		}
		port.SetQueueLimit(p, 1<<16)
	})
	s.Run(0)
	match := pupTo(1, 2, 1, 35)
	deliver := func() {
		d.input(match)
		s.Run(0)
		port.popFront(1)
	}
	for i := 0; i < 64; i++ {
		deliver()
	}
	if a := testing.AllocsPerRun(200, deliver); a != 0 {
		t.Errorf("governed receive path allocates %.1f/packet, want 0", a)
	}
}
