package fexpr

import (
	"strings"
	"testing"

	"repro/internal/ethersim"
	"repro/internal/filter"
	"repro/internal/pup"
	"repro/internal/vmtp"
)

// pupFrame builds a 3Mb Pup frame.
func pupFrame(t uint8, dstSock, srcSock uint32, dstHost, srcHost uint8) []byte {
	pkt := pup.Packet{
		Type: t,
		Dst:  pup.PortAddr{Net: 1, Host: dstHost, Socket: dstSock},
		Src:  pup.PortAddr{Net: 1, Host: srcHost, Socket: srcSock},
	}
	payload, _ := pkt.Marshal()
	return ethersim.Ether3Mb.Encode(ethersim.Addr(dstHost), ethersim.Addr(srcHost),
		ethersim.EtherTypePup3Mb, payload)
}

func eval(t *testing.T, expr string, link ethersim.LinkType, pkt []byte) bool {
	t.Helper()
	prog, ext, err := Compile(expr, link)
	if err != nil {
		t.Fatalf("Compile(%q): %v", expr, err)
	}
	var r filter.Result
	if ext {
		r = filter.RunExt(prog, pkt, filter.Env{HeaderWords: link.HeaderWords()})
	} else {
		r = filter.Run(prog, pkt)
	}
	if r.Err != nil {
		t.Fatalf("eval(%q): %v", expr, r.Err)
	}
	return r.Accept
}

func TestProtocolPredicates(t *testing.T) {
	pupPkt := pupFrame(5, 35, 99, 2, 1)
	ipPkt := ethersim.Ether3Mb.Encode(2, 1, ethersim.EtherTypeIP, make([]byte, 28))
	cases := []struct {
		expr string
		pkt  []byte
		want bool
	}{
		{"pup", pupPkt, true},
		{"pup", ipPkt, false},
		{"ip", ipPkt, true},
		{"arp", ipPkt, false},
		{"not pup", ipPkt, true},
		{"not pup", pupPkt, false},
		{"pup or ip", ipPkt, true},
		{"pup and ip", ipPkt, false},
		{"pup type 5", pupPkt, true},
		{"pup type 6", pupPkt, false},
		{"pup dstsocket 35", pupPkt, true},
		{"pup dstsocket 36", pupPkt, false},
		{"pup srcsocket 99", pupPkt, true},
		{"pup srcsocket 98", pupPkt, false},
		{"pup dsthost 2", pupPkt, true},
		{"pup dsthost 3", pupPkt, false},
		{"pup srchost 1", pupPkt, true},
		{"pup and pup dstsocket 35 and pup type 5", pupPkt, true},
		{"pup and pup dstsocket 35 and pup type 6", pupPkt, false},
		{"pup and (pup type 6 or pup dstsocket 35)", pupPkt, true},
		{"word[1] == 2", pupPkt, true},
		{"word[1] != 2", pupPkt, false},
		{"word[1] >= 2 and word[1] <= 2", pupPkt, true},
	}
	for _, c := range cases {
		if got := eval(t, c.expr, ethersim.Ether3Mb, c.pkt); got != c.want {
			t.Errorf("%q = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestLinkAddressPredicates(t *testing.T) {
	pkt3 := pupFrame(1, 9, 9, 0x42, 0x17)
	bcast3 := ethersim.Ether3Mb.Encode(ethersim.Broadcast3Mb, 0x17,
		ethersim.EtherTypePup3Mb, make([]byte, 22))
	cases := []struct {
		expr string
		pkt  []byte
		want bool
	}{
		{"dst 0x42", pkt3, true},
		{"dst 0x17", pkt3, false},
		{"src 0x17", pkt3, true},
		{"host 0x42", pkt3, true},
		{"host 0x17", pkt3, true},
		{"host 0x55", pkt3, false},
		{"broadcast", bcast3, true},
		{"broadcast", pkt3, false},
	}
	for _, c := range cases {
		if got := eval(t, c.expr, ethersim.Ether3Mb, c.pkt); got != c.want {
			t.Errorf("%q = %v, want %v", c.expr, got, c.want)
		}
	}

	// 10Mb: six-byte addresses span three words each.
	pkt10 := ethersim.Ether10Mb.Encode(0xAABBCCDDEEFF, 0x010203040506,
		ethersim.EtherTypeIP, make([]byte, 28))
	if !eval(t, "dst 0xAABBCCDDEEFF", ethersim.Ether10Mb, pkt10) {
		t.Error("10Mb dst match failed")
	}
	if eval(t, "dst 0xAABBCCDDEE00", ethersim.Ether10Mb, pkt10) {
		t.Error("10Mb dst mismatch accepted")
	}
	if !eval(t, "src 0x010203040506", ethersim.Ether10Mb, pkt10) {
		t.Error("10Mb src match failed")
	}
}

func TestVMTPPort(t *testing.T) {
	mk := func(port uint32) []byte {
		return ethersim.Ether10Mb.Encode(2, 1, ethersim.EtherTypeVMTP,
			vmtp.Marshal(vmtp.Header{DstPort: port, Kind: vmtp.KindRequest, Count: 1}, nil))
	}
	if !eval(t, "vmtp port 0x12345678", ethersim.Ether10Mb, mk(0x12345678)) {
		t.Error("vmtp port match failed")
	}
	if eval(t, "vmtp port 0x12345678", ethersim.Ether10Mb, mk(0x12345679)) {
		t.Error("vmtp port mismatch accepted")
	}
	if !eval(t, "vmtp", ethersim.Ether10Mb, mk(7)) {
		t.Error("bare vmtp failed")
	}
}

func TestExtendedPredicates(t *testing.T) {
	pkt := pupFrame(1, 9, 9, 2, 1) // 26 bytes on the wire
	prog, ext, err := Compile("len == 26", ethersim.Ether3Mb)
	if err != nil {
		t.Fatal(err)
	}
	if !ext {
		t.Fatal("len should require extensions")
	}
	if !filter.RunExt(prog, pkt, filter.Env{}).Accept {
		t.Error("len == 26 rejected a 26-byte packet")
	}
	if !eval(t, "byte[3] == 2", ethersim.Ether3Mb, pkt) { // ether type low byte
		t.Error("byte test failed")
	}
	if !eval(t, "len > 10 and pup", ethersim.Ether3Mb, pkt) {
		t.Error("mixed extended/base conjunction failed")
	}
}

func TestHexAndCaseInsensitivity(t *testing.T) {
	pkt := pupFrame(0x10, 0x23, 9, 2, 1)
	if !eval(t, "PUP AND PUP TYPE 0x10", ethersim.Ether3Mb, pkt) {
		t.Error("case-insensitive keywords failed")
	}
	if !eval(t, "pup dstsocket 0x23", ethersim.Ether3Mb, pkt) {
		t.Error("hex socket failed")
	}
}

func TestEquivalenceWithHandFilters(t *testing.T) {
	// The expression compiler must agree with the hand-written
	// DstSocketFilter on a range of packets.
	prog := MustCompile("pup dstsocket 35", ethersim.Ether3Mb)
	hand := filter.DstSocketFilter(10, 35).Program
	for _, pkt := range [][]byte{
		pupFrame(1, 35, 0, 2, 1),
		pupFrame(1, 36, 0, 2, 1),
		pupFrame(9, 35|1<<16, 0, 2, 1),
		ethersim.Ether3Mb.Encode(2, 1, ethersim.EtherTypeIP, make([]byte, 28)),
		{0, 1},
	} {
		a := filter.Run(prog, pkt).Accept
		b := filter.Run(hand, pkt).Accept
		if a != b {
			t.Fatalf("divergence on %x: fexpr=%v hand=%v", pkt, a, b)
		}
	}
}

func TestShortCircuitCodegen(t *testing.T) {
	// A top-level conjunction must reject early: feeding a packet
	// failing the first conjunct executes far fewer instructions
	// than the whole program.
	prog := MustCompile("pup and pup dstsocket 35 and pup type 1", ethersim.Ether3Mb)
	ipPkt := ethersim.Ether3Mb.Encode(2, 1, ethersim.EtherTypeIP, make([]byte, 28))
	r := filter.Run(prog, ipPkt)
	if r.Accept {
		t.Fatal("accepted wrong packet")
	}
	info := filter.MustValidate(prog, filter.ValidateOptions{})
	if r.Instrs >= info.Instrs {
		t.Fatalf("no short circuit: executed %d of %d", r.Instrs, info.Instrs)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"and",
		"pup and",
		"frob",
		"word[",
		"word[1]",
		"word[1] ?? 5",
		"word[1] == 99999999999",
		"word[1] == 0x10000",
		"(pup",
		"pup)",
		"word[9999] == 1",
		"vmtp port",
		"dst",
		"pup @ 1",
		"word[1] ! 2",
	}
	for _, src := range bad {
		if _, _, err := Compile(src, ethersim.Ether3Mb); err == nil {
			t.Errorf("Compile(%q) succeeded", src)
		}
	}
}

func TestGeneratedProgramsValidate(t *testing.T) {
	exprs := []string{
		"pup",
		"pup and pup dstsocket 35",
		"not (pup or ip) and word[3] > 7",
		"broadcast or host 5",
		"vmtp port 500 or vmtp port 501",
		"len >= 60 and byte[0] != 0xff",
		"pup and pup type 1 and pup dsthost 2 and pup srchost 1 and pup srcsocket 9",
	}
	for _, e := range exprs {
		prog, ext, err := Compile(e, ethersim.Ether3Mb)
		if err != nil {
			t.Errorf("Compile(%q): %v", e, err)
			continue
		}
		if _, err := filter.Validate(prog, filter.ValidateOptions{Extensions: ext}); err != nil {
			t.Errorf("%q: generated program invalid: %v", e, err)
		}
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCompile did not panic")
		}
	}()
	MustCompile("frob", ethersim.Ether3Mb)
}

func TestConjunctDeduplication(t *testing.T) {
	// "pup and pup dstsocket 35" must test the Ethernet type once.
	a := MustCompile("pup and pup dstsocket 35", ethersim.Ether3Mb)
	b := MustCompile("pup dstsocket 35", ethersim.Ether3Mb)
	if !a.Equal(b) {
		t.Fatalf("redundant conjunct not removed:\n%s\nvs\n%s", a, b)
	}
	// And the deduped form still evaluates correctly.
	if !filter.Run(a, pupFrame(1, 35, 0, 2, 1)).Accept {
		t.Fatal("deduped program rejects matching packet")
	}
	if filter.Run(a, pupFrame(1, 36, 0, 2, 1)).Accept {
		t.Fatal("deduped program accepts wrong socket")
	}
}

func TestDisassemblyReadable(t *testing.T) {
	prog := MustCompile("pup and pup dstsocket 35", ethersim.Ether3Mb)
	s := prog.String()
	if !strings.Contains(s, "CAND") {
		t.Errorf("expected short-circuit chain in:\n%s", s)
	}
}
