// Package fexpr compiles a small tcpdump-style expression language
// into packet-filter programs.  The paper observes that "in normal
// use, the filters are not directly constructed by the programmer, but
// are 'compiled' at run time by a library procedure" (§3.1); this
// package is that library procedure taken to its logical end — the
// same idea that later grew into libpcap's expression compiler on top
// of BPF, the packet filter's direct descendant.
//
// Grammar (case-insensitive keywords):
//
//	expr      = or
//	or        = and { "or" and }
//	and       = unary { "and" unary }
//	unary     = "not" unary | "(" expr ")" | predicate
//	predicate =
//	    "pup" | "ip" | "arp" | "rarp" | "vmtp"        protocol family
//	  | "pup" "type" NUM                              Pup type byte
//	  | "pup" ("dstsocket"|"srcsocket") NUM           Pup 32-bit sockets
//	  | "pup" ("dsthost"|"srchost") NUM               Pup host bytes
//	  | "vmtp" "port" NUM                             VMTP destination port
//	  | "host" NUM                                    data-link src or dst
//	  | ("src"|"dst") NUM                             data-link address
//	  | "broadcast"                                   data-link broadcast
//	  | "word" "[" NUM "]" CMP NUM                    raw 16-bit word test
//	  | "len" CMP NUM                                 packet length (extended)
//	  | "byte" "[" NUM "]" CMP NUM                    raw byte test (extended)
//	CMP = "==" | "=" | "!=" | "<" | "<=" | ">" | ">="
//
// Numbers are decimal or 0x-hex.  Examples:
//
//	pup and pup dstsocket 35
//	(vmtp port 500 or vmtp port 501) and not broadcast
//	word[1] == 2 and byte[7] > 0
//
// Compile targets a specific link type, resolving field offsets for
// the 3 Mb or 10 Mb Ethernet.  When the top level of the expression is
// a conjunction, the generated code uses the short-circuit CAND idiom
// of figure 3-9 so non-matching packets exit after the first failing
// conjunct.
package fexpr

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/ethersim"
	"repro/internal/filter"
)

// Compile parses src and generates a filter program for the given
// link.  Expressions using len or byte[] require the device to enable
// the §7 extensions; Compile reports needsExt accordingly.
func Compile(src string, link ethersim.LinkType) (prog filter.Program, needsExt bool, err error) {
	toks, err := lex(src)
	if err != nil {
		return nil, false, err
	}
	p := &parser{toks: toks, link: link}
	ast, err := p.parseExpr()
	if err != nil {
		return nil, false, err
	}
	if !p.eof() {
		return nil, false, fmt.Errorf("fexpr: unexpected %q after expression", p.peek())
	}
	g := &codegen{link: link}
	prog, err = g.compile(ast)
	if err != nil {
		return nil, false, err
	}
	opt := filter.ValidateOptions{Extensions: g.usedExt}
	if _, err := filter.Validate(prog, opt); err != nil {
		return nil, false, fmt.Errorf("fexpr: generated program invalid: %w", err)
	}
	// Peephole pass: narrows literals into the wired constants and
	// fuses push/operator pairs into the paper's two-word idiom.
	return filter.Optimize(prog, opt), g.usedExt, nil
}

// MustCompile is Compile for expressions known good at authoring time.
func MustCompile(src string, link ethersim.LinkType) filter.Program {
	prog, _, err := Compile(src, link)
	if err != nil {
		panic(err)
	}
	return prog
}

// --- Lexer -----------------------------------------------------------------

func lex(src string) ([]string, error) {
	var toks []string
	s := strings.ToLower(src)
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n':
			i++
		case c == '(' || c == ')' || c == '[' || c == ']':
			toks = append(toks, string(c))
			i++
		case c == '=' || c == '!' || c == '<' || c == '>':
			j := i + 1
			if j < len(s) && s[j] == '=' {
				j++
			}
			op := s[i:j]
			if op == "!" {
				return nil, fmt.Errorf("fexpr: stray '!' (use !=)")
			}
			toks = append(toks, op)
			i = j
		case c >= '0' && c <= '9':
			j := i
			for j < len(s) && (s[j] >= '0' && s[j] <= '9' ||
				s[j] >= 'a' && s[j] <= 'f' || s[j] == 'x') {
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		case c >= 'a' && c <= 'z':
			j := i
			for j < len(s) && (s[j] >= 'a' && s[j] <= 'z' || s[j] >= '0' && s[j] <= '9') {
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		default:
			return nil, fmt.Errorf("fexpr: unexpected character %q", c)
		}
	}
	if len(toks) == 0 {
		return nil, fmt.Errorf("fexpr: empty expression")
	}
	return toks, nil
}

// --- AST and parser ---------------------------------------------------------

type nodeKind int

const (
	nAnd nodeKind = iota
	nOr
	nNot
	nWordCmp // word[off] cmp val
	nByteCmp // byte[off] cmp val (extended)
	nLenCmp  // len cmp val (extended)
)

type node struct {
	kind nodeKind
	kids []*node
	off  int
	cmp  filter.Op
	val  uint16
	mask uint16 // applied to the word before comparing (0 = none)
}

type parser struct {
	toks []string
	pos  int
	link ethersim.LinkType
}

func (p *parser) eof() bool { return p.pos >= len(p.toks) }
func (p *parser) peek() string {
	if p.eof() {
		return ""
	}
	return p.toks[p.pos]
}
func (p *parser) next() string {
	t := p.peek()
	p.pos++
	return t
}
func (p *parser) expect(tok string) error {
	if p.peek() != tok {
		return fmt.Errorf("fexpr: expected %q, found %q", tok, p.peek())
	}
	p.pos++
	return nil
}

func (p *parser) parseExpr() (*node, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek() == "or" {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &node{kind: nOr, kids: []*node{left, right}}
	}
	return left, nil
}

func (p *parser) parseAnd() (*node, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peek() == "and" {
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &node{kind: nAnd, kids: []*node{left, right}}
	}
	return left, nil
}

func (p *parser) parseUnary() (*node, error) {
	switch p.peek() {
	case "not":
		p.next()
		kid, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &node{kind: nNot, kids: []*node{kid}}, nil
	case "(":
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return p.parsePredicate()
}

// etherType returns the link's type-code for a protocol keyword.
func (p *parser) etherType(proto string) (uint16, bool) {
	switch proto {
	case "pup":
		if p.link == ethersim.Ether3Mb {
			return ethersim.EtherTypePup3Mb, true
		}
		return ethersim.EtherTypePup, true
	case "ip":
		return ethersim.EtherTypeIP, true
	case "arp":
		return ethersim.EtherTypeARP, true
	case "rarp":
		return ethersim.EtherTypeRARP, true
	case "vmtp":
		return ethersim.EtherTypeVMTP, true
	}
	return 0, false
}

// wordEQ builds a word[off] == val node.
func wordEQ(off int, val uint16) *node {
	return &node{kind: nWordCmp, off: off, cmp: filter.EQ, val: val}
}

func (p *parser) parsePredicate() (*node, error) {
	tok := p.next()
	hw := p.link.HeaderWords()
	typeWord := p.link.TypeWord()

	if et, ok := p.etherType(tok); ok {
		base := wordEQ(typeWord, et)
		switch tok {
		case "pup":
			return p.parsePupQualifier(base, hw)
		case "vmtp":
			if p.peek() == "port" {
				p.next()
				v, err := p.num32()
				if err != nil {
					return nil, err
				}
				// VMTP destination port: payload words 0-1.
				return conj(base,
					wordEQ(hw, uint16(v>>16)),
					wordEQ(hw+1, uint16(v))), nil
			}
		}
		return base, nil
	}

	switch tok {
	case "host", "src", "dst":
		v, err := p.num64()
		if err != nil {
			return nil, err
		}
		dst, src, err := p.linkAddrNodes(v)
		if err != nil {
			return nil, err
		}
		switch tok {
		case "src":
			return src, nil
		case "dst":
			return dst, nil
		default:
			return &node{kind: nOr, kids: []*node{dst, src}}, nil
		}
	case "broadcast":
		bcast, _, err := p.linkAddrNodes(uint64(p.link.BroadcastAddr()))
		if err != nil {
			return nil, err
		}
		return bcast, nil
	case "word", "byte":
		if err := p.expect("["); err != nil {
			return nil, err
		}
		off, err := p.num32()
		if err != nil {
			return nil, err
		}
		if err := p.expect("]"); err != nil {
			return nil, err
		}
		cmp, val, err := p.cmpVal()
		if err != nil {
			return nil, err
		}
		kind := nWordCmp
		if tok == "byte" {
			kind = nByteCmp
		}
		return &node{kind: kind, off: int(off), cmp: cmp, val: val}, nil
	case "len":
		cmp, val, err := p.cmpVal()
		if err != nil {
			return nil, err
		}
		return &node{kind: nLenCmp, cmp: cmp, val: val}, nil
	}
	return nil, fmt.Errorf("fexpr: unknown predicate %q", tok)
}

// parsePupQualifier handles the optional field tests after "pup".
func (p *parser) parsePupQualifier(base *node, hw int) (*node, error) {
	switch p.peek() {
	case "type":
		p.next()
		v, err := p.num32()
		if err != nil {
			return nil, err
		}
		// Pup type: low byte of the second Pup word.
		n := &node{kind: nWordCmp, off: hw + 1, cmp: filter.EQ,
			val: uint16(v) & 0x00FF, mask: 0x00FF}
		return conj(base, n), nil
	case "dstsocket", "srcsocket":
		which := p.next()
		v, err := p.num32()
		if err != nil {
			return nil, err
		}
		off := hw + 5 // DstSocket: Pup bytes 10-13
		if which == "srcsocket" {
			off = hw + 8 // SrcSocket: Pup bytes 16-19
		}
		return conj(base,
			wordEQ(off+1, uint16(v)), // low word first: most selective
			wordEQ(off, uint16(v>>16))), nil
	case "dsthost", "srchost":
		which := p.next()
		v, err := p.num32()
		if err != nil {
			return nil, err
		}
		// DstNet|DstHost at Pup bytes 8-9; SrcNet|SrcHost at 14-15.
		off, mask := hw+4, uint16(0x00FF)
		if which == "srchost" {
			off = hw + 7
			mask = 0x00FF
		}
		n := &node{kind: nWordCmp, off: off, cmp: filter.EQ,
			val: uint16(v) & mask, mask: mask}
		return conj(base, n), nil
	}
	return base, nil
}

// linkAddrNodes builds (dst, src) equality nodes for a data-link
// address on this link type.
func (p *parser) linkAddrNodes(addr uint64) (dst, src *node, err error) {
	if p.link == ethersim.Ether3Mb {
		// One-byte addresses share word 0: dst high byte, src low.
		d := &node{kind: nWordCmp, off: 0, cmp: filter.EQ,
			val: uint16(addr<<8) & 0xFF00, mask: 0xFF00}
		s := &node{kind: nWordCmp, off: 0, cmp: filter.EQ,
			val: uint16(addr) & 0x00FF, mask: 0x00FF}
		return d, s, nil
	}
	// Six-byte addresses: words 0-2 (dst) and 3-5 (src).
	mk := func(base int) *node {
		return conj(
			wordEQ(base+2, uint16(addr)),
			wordEQ(base+1, uint16(addr>>16)),
			wordEQ(base, uint16(addr>>32)))
	}
	return mk(0), mk(3), nil
}

func (p *parser) num32() (uint32, error) {
	v, err := p.num64()
	if err != nil {
		return 0, err
	}
	if v > 0xFFFFFFFF {
		return 0, fmt.Errorf("fexpr: value %d exceeds 32 bits", v)
	}
	return uint32(v), nil
}

// num64 parses a number wide enough for 48-bit data-link addresses.
func (p *parser) num64() (uint64, error) {
	tok := p.next()
	if tok == "" {
		return 0, fmt.Errorf("fexpr: expected number at end of expression")
	}
	base := 10
	s := tok
	if strings.HasPrefix(tok, "0x") {
		base = 16
		s = tok[2:]
	}
	v, err := strconv.ParseUint(s, base, 64)
	if err != nil {
		return 0, fmt.Errorf("fexpr: bad number %q", tok)
	}
	return v, nil
}

func (p *parser) cmpVal() (filter.Op, uint16, error) {
	var op filter.Op
	switch tok := p.next(); tok {
	case "==", "=":
		op = filter.EQ
	case "!=":
		op = filter.NEQ
	case "<":
		op = filter.LT
	case "<=":
		op = filter.LE
	case ">":
		op = filter.GT
	case ">=":
		op = filter.GE
	default:
		return 0, 0, fmt.Errorf("fexpr: expected comparison, found %q", tok)
	}
	v, err := p.num32()
	if err != nil {
		return 0, 0, err
	}
	if v > 0xFFFF {
		return 0, 0, fmt.Errorf("fexpr: comparison value %d exceeds 16 bits", v)
	}
	return op, uint16(v), nil
}

// conj folds nodes into a left-deep AND tree.
func conj(ns ...*node) *node {
	out := ns[0]
	for _, n := range ns[1:] {
		out = &node{kind: nAnd, kids: []*node{out, n}}
	}
	return out
}

// --- Code generation --------------------------------------------------------

type codegen struct {
	link    ethersim.LinkType
	b       *filter.Builder
	usedExt bool
}

func (g *codegen) compile(ast *node) (filter.Program, error) {
	g.usedExt = usesExt(ast)
	if g.usedExt {
		g.b = filter.NewExtendedBuilder()
	} else {
		g.b = filter.NewBuilder()
	}

	// Top-level conjunction: emit the figure 3-9 short-circuit
	// chain.  Every conjunct except the last ends with CAND against
	// TRUE so a failing test rejects immediately.  Identical leaf
	// conjuncts are deduplicated: "pup and pup dstsocket 35" tests
	// the Ethernet type once, not twice.
	conjuncts := dedupe(flattenAnd(ast))
	for i, c := range conjuncts {
		if err := g.emit(c); err != nil {
			return nil, err
		}
		if i < len(conjuncts)-1 {
			// Stack: ..., bool.  Compare with 1 and bail on
			// mismatch.
			g.b.Raw(filter.MkInstr(filter.PUSHONE, filter.CAND))
		}
	}
	return g.b.Program()
}

func flattenAnd(n *node) []*node {
	if n.kind != nAnd {
		return []*node{n}
	}
	return append(flattenAnd(n.kids[0]), flattenAnd(n.kids[1])...)
}

// dedupe removes repeated identical leaf tests from a conjunction; a
// duplicated conjunct is always redundant under AND.
func dedupe(ns []*node) []*node {
	type leaf struct {
		kind nodeKind
		off  int
		cmp  filter.Op
		val  uint16
		mask uint16
	}
	seen := make(map[leaf]bool, len(ns))
	out := ns[:0]
	for _, n := range ns {
		if len(n.kids) == 0 {
			k := leaf{n.kind, n.off, n.cmp, n.val, n.mask}
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		out = append(out, n)
	}
	return out
}

func usesExt(n *node) bool {
	if n.kind == nByteCmp || n.kind == nLenCmp {
		return true
	}
	for _, k := range n.kids {
		if usesExt(k) {
			return true
		}
	}
	return false
}

// emit generates code leaving one canonical boolean (0/1) on the
// stack.
func (g *codegen) emit(n *node) error {
	switch n.kind {
	case nAnd, nOr:
		if err := g.emit(n.kids[0]); err != nil {
			return err
		}
		if err := g.emit(n.kids[1]); err != nil {
			return err
		}
		if n.kind == nAnd {
			g.b.And() // operands are canonical bools: bitwise == logical
		} else {
			g.b.Or()
		}
	case nNot:
		if err := g.emit(n.kids[0]); err != nil {
			return err
		}
		g.b.Raw(filter.MkInstr(filter.PUSHZERO, filter.EQ)) // NOT x == (x == 0)
	case nWordCmp:
		if n.off < 0 || n.off > filter.MaxWordIndex {
			return fmt.Errorf("fexpr: word offset %d out of range", n.off)
		}
		g.b.PushWord(n.off)
		if n.mask != 0 && n.mask != 0xFFFF {
			g.b.LitOp(filter.AND, n.mask)
		}
		g.b.LitOp(n.cmp, n.val)
	case nByteCmp:
		g.b.PushByte(n.off)
		g.b.LitOp(n.cmp, n.val)
	case nLenCmp:
		g.b.PushPktLen()
		g.b.LitOp(n.cmp, n.val)
	}
	return g.b.Err()
}
