package fexpr_test

import (
	"fmt"

	"repro/internal/ethersim"
	"repro/internal/fexpr"
)

// ExampleCompile turns a tcpdump-style expression into a filter
// program targeting the 3 Mb experimental Ethernet.  The generated
// code uses the short-circuit chain of the paper's figure 3-9 and is
// run through the peephole optimizer.
func ExampleCompile() {
	prog, needsExt, err := fexpr.Compile("pup and pup dstsocket 35", ethersim.Ether3Mb)
	if err != nil {
		panic(err)
	}
	fmt.Println("extensions required:", needsExt)
	fmt.Print(prog.String())
	// Output:
	// extensions required: false
	// PUSHWORD+1
	// PUSHLIT|EQ, 2
	// PUSHONE|CAND
	// PUSHWORD+8
	// PUSHLIT|EQ, 35
	// PUSHONE|CAND
	// PUSHWORD+7
	// PUSHZERO|EQ
}

// ExampleCompile_extended shows an expression requiring the §7
// extended instructions (packet length and byte access).
func ExampleCompile_extended() {
	_, needsExt, err := fexpr.Compile("len >= 60 and byte[0] != 0xff", ethersim.Ether10Mb)
	if err != nil {
		panic(err)
	}
	fmt.Println("extensions required:", needsExt)
	// Output:
	// extensions required: true
}
