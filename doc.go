// Package repro is a from-scratch Go reproduction of "The Packet
// Filter: An Efficient Mechanism for User-level Network Code" (Mogul,
// Rashid & Accetta, Proc. 11th SOSP, 1987).
//
// The library lives under internal/: the CSPF stack-language filter
// engine (internal/filter), the kernel-resident demultiplexing
// pseudodevice (internal/pfdev), a deterministic simulated OS and
// Ethernet calibrated to the paper's VAX measurements (internal/sim,
// internal/ethersim, internal/vtime), the protocol suites the paper
// evaluates (internal/pup, internal/vmtp, internal/inet,
// internal/rarp), the user-level demultiplexer baseline
// (internal/demux), a network monitor (internal/monitor), and the
// experiment harness regenerating every table and figure
// (internal/bench, cmd/pfbench).
//
// See README.md for a tour, DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results.  bench_test.go in this
// directory holds one testing.B benchmark per paper table/figure plus
// real-time microbenchmarks of the filter engine.
package repro
