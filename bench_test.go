package repro

// One benchmark per paper table and figure (driving the virtual-time
// experiments in internal/bench and reporting the headline metric),
// plus real-nanosecond microbenchmarks of the filter engine itself —
// the numbers a downstream Go user of this library cares about.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// The virtual-time benches report custom metrics (vms/pkt = virtual
// milliseconds per packet, vKB/s = virtual kilobytes per second) so
// the paper's units survive into the benchmark output.

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/ethersim"
	"repro/internal/filter"
	"repro/internal/pup"
	"repro/internal/vmtp"
)

// --- Real-time microbenchmarks of the filter engine -----------------------

// benchPacket is an accepted Pup packet for figure 3-9's filter.
func benchPacket(socket uint32) []byte {
	pkt := pup.Packet{Type: 1, Dst: pup.PortAddr{Net: 1, Host: 2, Socket: socket}}
	payload, _ := pkt.Marshal()
	return ethersim.Ether3Mb.Encode(2, 1, ethersim.EtherTypePup3Mb, payload)
}

func BenchmarkInterpretChecked(b *testing.B) {
	prog := filter.Fig38PupTypeRange().Program
	pkt := benchPacket(35)
	pkt[7] = 50 // PupType in range
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !filter.Run(prog, pkt).Accept {
			b.Fatal("reject")
		}
	}
}

func BenchmarkInterpretPrevalidated(b *testing.B) {
	pv, err := filter.Prevalidate(filter.Fig38PupTypeRange().Program, filter.ValidateOptions{})
	if err != nil {
		b.Fatal(err)
	}
	pkt := benchPacket(35)
	pkt[7] = 50
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !pv.Run(pkt).Accept {
			b.Fatal("reject")
		}
	}
}

func BenchmarkInterpretCompiled(b *testing.B) {
	c, err := filter.Compile(filter.Fig38PupTypeRange().Program, filter.ValidateOptions{}, filter.Env{})
	if err != nil {
		b.Fatal(err)
	}
	pkt := benchPacket(35)
	pkt[7] = 50
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !c.Run(pkt) {
			b.Fatal("reject")
		}
	}
}

func BenchmarkShortCircuitMiss(b *testing.B) {
	prog := filter.Fig39PupSocket().Program
	pkt := benchPacket(36) // wrong socket: 2 instructions
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if filter.Run(prog, pkt).Accept {
			b.Fatal("accept")
		}
	}
}

// BenchmarkFilterSet20Linear vs ...Table: the §7 decision-table claim
// in real nanoseconds — 20 active filters, matching the last one.
func filterSet20() []filter.Filter {
	fs := make([]filter.Filter, 20)
	for i := range fs {
		fs[i] = filter.DstSocketFilter(10, uint32(0x100+i))
	}
	return fs
}

func BenchmarkFilterSet20Linear(b *testing.B) {
	fs := filterSet20()
	pvs := make([]*filter.Prevalidated, len(fs))
	for i, f := range fs {
		pv, err := filter.Prevalidate(f.Program, filter.ValidateOptions{})
		if err != nil {
			b.Fatal(err)
		}
		pvs[i] = pv
	}
	pkt := benchPacket(0x100 + 19)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hit := -1
		for j, pv := range pvs {
			if pv.Run(pkt).Accept {
				hit = j
				break
			}
		}
		if hit != 19 {
			b.Fatal("wrong match")
		}
	}
}

func BenchmarkFilterSet20Table(b *testing.B) {
	tbl := filter.BuildTable(filterSet20())
	pkt := benchPacket(0x100 + 19)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl.MatchBest(pkt) != 19 {
			b.Fatal("wrong match")
		}
	}
}

func BenchmarkPairPredicate(b *testing.B) {
	pred := filter.PairPredicate{
		{Word: 8, Value: 0x123},
		{Word: 7, Value: 0},
		{Word: 1, Value: 2},
	}
	pkt := benchPacket(0x123)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !pred.Match(pkt) {
			b.Fatal("reject")
		}
	}
}

func BenchmarkValidate(b *testing.B) {
	prog := filter.Fig38PupTypeRange().Program
	for i := 0; i < b.N; i++ {
		if _, err := filter.Validate(prog, filter.ValidateOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildFilter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		filter.DstSocketFilter(10, uint32(i))
	}
}

func BenchmarkPupMarshal(b *testing.B) {
	pkt := pup.Packet{Type: 1, ID: 7, Data: make([]byte, 128), Checksummed: true}
	b.SetBytes(int64(pup.HeaderLen + 128 + pup.ChecksumLen))
	for i := 0; i < b.N; i++ {
		if _, err := pkt.Marshal(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVMTPMarshal(b *testing.B) {
	h := vmtp.Header{DstPort: 500, TransID: 9, Kind: vmtp.KindRequest, Count: 1}
	data := make([]byte, 256)
	b.SetBytes(int64(vmtp.HeaderLen + 256))
	for i := 0; i < b.N; i++ {
		vmtp.Marshal(h, data)
	}
}

// --- Virtual-time experiments, one per paper table/figure -----------------

// cellMS parses "12.34 mSec" (or a bare number) from a table cell.
func cellMS(b *testing.B, cell string) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(strings.Fields(cell)[0], 64)
	if err != nil {
		b.Fatalf("bad cell %q", cell)
	}
	return v
}

// reportTable re-runs a bench experiment b.N times and reports the
// chosen cell as a custom metric.
func reportTable(b *testing.B, run func() bench.Table, row, col int, metric string) {
	var last float64
	for i := 0; i < b.N; i++ {
		tb := run()
		last = cellMS(b, tb.Rows[row][col])
	}
	b.ReportMetric(last, metric)
	b.ReportMetric(0, "ns/op") // wall time is not the quantity of interest
}

func BenchmarkFig2Demux(b *testing.B) {
	reportTable(b, bench.Fig21DemuxCounts, 1, 1, "vswitches/pkt")
}

func BenchmarkFig23DomainCrossing(b *testing.B) {
	reportTable(b, bench.Fig23DomainCrossings, 0, 1, "vcrossings/op")
}

func BenchmarkFig34Batching(b *testing.B) {
	reportTable(b, bench.Fig34Batching, 1, 1, "vsyscalls/pkt")
}

func BenchmarkTable61Send(b *testing.B) {
	reportTable(b, bench.Table61Send, 0, 1, "vms/pkt")
}

func BenchmarkTable62VMTPSmall(b *testing.B) {
	reportTable(b, bench.Table62VMTPSmall, 0, 1, "vms/op")
}

func BenchmarkTable63VMTPBulk(b *testing.B) {
	reportTable(b, bench.Table63VMTPBulk, 0, 1, "vKB/s")
}

func BenchmarkTable64Batching(b *testing.B) {
	reportTable(b, bench.Table64Batching, 0, 1, "vKB/s")
}

func BenchmarkTable65UserDemux(b *testing.B) {
	reportTable(b, bench.Table65UserDemux, 1, 2, "vKB/s")
}

func BenchmarkTable66Stream(b *testing.B) {
	reportTable(b, bench.Table66Stream, 0, 1, "vKB/s")
}

func BenchmarkTable67Telnet(b *testing.B) {
	reportTable(b, bench.Table67Telnet, 0, 3, "vchars/s")
}

func BenchmarkTable68RecvCost(b *testing.B) {
	reportTable(b, bench.Table68RecvCost, 0, 1, "vms/pkt")
}

func BenchmarkTable69RecvBatch(b *testing.B) {
	reportTable(b, bench.Table69RecvBatch, 0, 1, "vms/pkt")
}

func BenchmarkTable610FilterLen(b *testing.B) {
	reportTable(b, bench.Table610FilterLen, 3, 1, "vms/pkt-21instr")
}

func BenchmarkSec61Profile(b *testing.B) {
	reportTable(b, bench.Sec61Profile, 0, 1, "vms/pkt")
}

func BenchmarkSec65BreakEven(b *testing.B) {
	reportTable(b, bench.Sec65BreakEven, 3, 2, "vms/pkt-20filters")
}

func BenchmarkAblationEvalModes(b *testing.B) {
	reportTable(b, bench.AblationEvalModes, 3, 1, "vms/pkt-table")
}

func BenchmarkAblationPriorityOrder(b *testing.B) {
	reportTable(b, bench.AblationPriorityOrder, 2, 1, "vfilters/pkt")
}

func BenchmarkWideMachineSocket(b *testing.B) {
	prog := filter.WideSocketFilter(0x123)
	pkt := benchPacket(0x123)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !filter.RunWide(prog, pkt).Accept {
			b.Fatal("reject")
		}
	}
}

func BenchmarkNarrowMachineSocket(b *testing.B) {
	prog := filter.DstSocketFilter(10, 0x123).Program
	pkt := benchPacket(0x123)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !filter.Run(prog, pkt).Accept {
			b.Fatal("reject")
		}
	}
}
