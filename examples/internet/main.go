// Internet demonstrates Pup living up to its name — "Pup: An
// internetwork architecture" — entirely at user level.  Two Ethernet
// segments (a 3 Mb experimental net and a 10 Mb standard net) are
// joined by a gateway host whose forwarding daemon is an ordinary
// process with one packet-filter port per network; its kernel-resident
// filter accepts exactly the Pups whose destination network differs
// from the arrival network, so local traffic never wakes it.
//
// A client on net 1 pings a server on net 2, transfers a "boot image"
// to it with EFTP, and finally a deliberately unroutable Pup shows the
// hop-count machinery.
//
//	go run ./examples/internet
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"repro/internal/ethersim"
	"repro/internal/pfdev"
	"repro/internal/pup"
	"repro/internal/sim"
	"repro/internal/vtime"
)

func main() {
	s := sim.New(vtime.DefaultCosts())
	net1 := ethersim.New(s, ethersim.Ether3Mb)  // the old lab net
	net2 := ethersim.New(s, ethersim.Ether10Mb) // the new building net

	client := s.NewHost("client")
	server := s.NewHost("server")
	gwHost := s.NewHost("gateway")

	devClient := pfdev.Attach(net1.Attach(client, 0x0A), nil, pfdev.Options{})
	devServer := pfdev.Attach(net2.Attach(server, 0x0B), nil, pfdev.Options{})
	gw1 := pfdev.Attach(net1.Attach(gwHost, 0x7E), nil, pfdev.Options{})
	gw2 := pfdev.Attach(net2.Attach(gwHost, 0x7F), nil, pfdev.Options{})

	gw := pup.NewGateway(
		pup.GatewayPort{Dev: gw1, Net: 1},
		pup.GatewayPort{Dev: gw2, Net: 2},
	)
	s.Spawn(gwHost, "pupgw", func(p *sim.Proc) { gw.Run(p, 300*time.Millisecond) })

	clientAddr := pup.PortAddr{Net: 1, Host: 0x0A, Socket: 0x100}
	echoAddr := pup.PortAddr{Net: 2, Host: 0x0B, Socket: 0x30}
	fileAddr := pup.PortAddr{Net: 2, Host: 0x0B, Socket: 0x31}
	image := bytes.Repeat([]byte("BOOT"), 1500) // a 6 KB boot image

	s.Spawn(server, "echod", func(p *sim.Proc) {
		sock, err := pup.Open(p, devServer, echoAddr, 10)
		if err != nil {
			log.Fatal(err)
		}
		sock.Gateway = 0x7F
		sock.EchoServer(p, 300*time.Millisecond)
	})
	s.Spawn(server, "eftpd", func(p *sim.Proc) {
		sock, err := pup.Open(p, devServer, fileAddr, 10)
		if err != nil {
			log.Fatal(err)
		}
		sock.Gateway = 0x7F
		got, err := pup.EFTPReceive(p, sock, 400*time.Millisecond, pup.DefaultEFTPConfig())
		if err != nil {
			fmt.Println("eftpd:", err)
			return
		}
		fmt.Printf("eftpd: received %d bytes across the internet, intact=%v\n",
			len(got), bytes.Equal(got, image))
	})

	s.Spawn(client, "client", func(p *sim.Proc) {
		sock, err := pup.Open(p, devClient, clientAddr, 10)
		if err != nil {
			log.Fatal(err)
		}
		sock.Gateway = 0x7E
		p.Sleep(10 * time.Millisecond)

		// 1. Ping across the gateway.
		rtt, err := sock.Echo(p, echoAddr, []byte("hello net 2"), 80*time.Millisecond, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("echo across gateway: %.2f mSec round trip\n",
			float64(rtt)/float64(time.Millisecond))

		// 2. EFTP a boot image across.
		fileSock, err := pup.Open(p, devClient,
			pup.PortAddr{Net: 1, Host: 0x0A, Socket: 0x101}, 10)
		if err != nil {
			log.Fatal(err)
		}
		fileSock.Gateway = 0x7E
		cfg := pup.DefaultEFTPConfig()
		cfg.RTO = 80 * time.Millisecond
		t0 := p.Now()
		retrans, err := pup.EFTPSend(p, fileSock, fileAddr, image, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("eftp: %d bytes in %.0f mSec (%d retransmissions)\n",
			len(image), float64(p.Now()-t0)/float64(time.Millisecond), retrans)

		// 3. Nowhere to go: net 9 is unattached.
		sock.Send(p, &pup.Packet{Type: 3, Dst: pup.PortAddr{Net: 9, Host: 1, Socket: 1}})
	})

	s.Run(5 * time.Second)
	fmt.Printf("gateway: forwarded %d Pups, dropped %d unroutable, %d over hop limit\n",
		gw.Forwarded, gw.DroppedNoRoute, gw.DroppedHops)
}
