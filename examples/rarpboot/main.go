// Rarpboot replays the §5.3 case study: diskless workstations discover
// their IP addresses at boot with the Reverse Address Resolution
// Protocol, implemented as an ordinary user process over the packet
// filter — no kernel modification, even though RARP sits *beside* IP
// rather than above it.
//
// One server holds the hardware-to-IP table; three diskless
// workstations broadcast reverse requests (one of them twice, because
// the example drops its first request to show the retry path); a
// fourth, unknown machine learns that no one will answer it.
//
//	go run ./examples/rarpboot
package main

import (
	"fmt"
	"time"

	"repro/internal/ethersim"
	"repro/internal/pfdev"
	"repro/internal/rarp"
	"repro/internal/sim"
	"repro/internal/vtime"
)

func ip(a rarp.IPAddr) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

func main() {
	s := sim.New(vtime.DefaultCosts())
	net := ethersim.New(s, ethersim.Ether10Mb)

	// Lose the very first frame on the wire so one workstation
	// exercises RFC 903's retry advice.
	net.DropFn = func(i uint64, _ []byte) bool { return i == 1 }

	serverHost := s.NewHost("rarpd-host")
	serverNIC := net.Attach(serverHost, 0x5E)
	serverDev := pfdev.Attach(serverNIC, nil, pfdev.Options{})

	table := map[ethersim.Addr]rarp.IPAddr{
		0x5E: 0x0A000001, // the server itself
		0xA1: 0x0A000011,
		0xA2: 0x0A000012,
		0xA3: 0x0A000013,
	}
	srv := rarp.NewServer(serverDev, table)
	s.Spawn(serverHost, "rarpd", func(p *sim.Proc) {
		srv.Run(p, 150*time.Millisecond)
	})

	boot := func(name string, hw ethersim.Addr, delay time.Duration) {
		h := s.NewHost(name)
		dev := pfdev.Attach(net.Attach(h, hw), nil, pfdev.Options{})
		s.Spawn(h, name, func(p *sim.Proc) {
			p.Sleep(delay)
			t0 := p.Now()
			addr, err := rarp.Resolve(p, dev, 20*time.Millisecond, 4)
			took := float64(p.Now()-t0) / float64(time.Millisecond)
			if err != nil {
				fmt.Printf("%s (hw %02x): boot failed after %.1f mSec: %v\n",
					name, uint64(hw), took, err)
				return
			}
			fmt.Printf("%s (hw %02x): I am %s (resolved in %.1f mSec)\n",
				name, uint64(hw), ip(addr), took)
		})
	}
	boot("ws-a", 0xA1, 2*time.Millisecond) // its first request is lost
	boot("ws-b", 0xA2, 4*time.Millisecond)
	boot("ws-c", 0xA3, 6*time.Millisecond)
	boot("stranger", 0xEE, 8*time.Millisecond) // not in the table

	s.Run(2 * time.Second)
	fmt.Printf("rarpd served %d requests, ignored %d unknown\n", srv.Served, srv.Unknown)
}
