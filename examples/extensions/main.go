// Extensions demonstrates the §7 language extensions on live traffic:
// "the filter language needs to be extended to include an 'indirect
// push' operator, as well as arithmetic operators to assist in
// addressing-unit conversions", motivated by IP's variable-length
// header ("since the IP header may include optional fields, fields in
// higher layer protocol headers are not at constant offsets").
//
// A sender emits UDP-over-IP packets whose IP headers carry varying
// amounts of options; a receiver binds ONE extended filter that
// computes the UDP header's offset from the IHL field at run time and
// matches destination port 7777 regardless of the options — something
// the base language of §3.1 cannot express.
//
//	go run ./examples/extensions
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"time"

	"repro/internal/ethersim"
	"repro/internal/filter"
	"repro/internal/pfdev"
	"repro/internal/sim"
	"repro/internal/vtime"
)

// mkIPUDP hand-builds an Ethernet+IP+UDP frame with ihl*4 bytes of IP
// header (ihl >= 5; the extra space is zero-filled "options").
func mkIPUDP(dst, src ethersim.Addr, ihl int, dstPort uint16) []byte {
	ip := make([]byte, 4*ihl+8)
	ip[0] = 0x40 | byte(ihl)
	binary.BigEndian.PutUint16(ip[2:], uint16(len(ip)))
	ip[8] = 30
	ip[9] = 17 // UDP
	binary.BigEndian.PutUint16(ip[4*ihl+2:], dstPort)
	return ethersim.Ether10Mb.Encode(dst, src, ethersim.EtherTypeIP, ip)
}

func main() {
	// The extended filter.  Word index of the UDP destination port:
	//   7 (Ethernet header) + 2*IHL (IP header in 16-bit words) + 1.
	prog, err := filter.NewExtendedBuilder().
		PushByte(14). // IP version/IHL byte
		LitOp(filter.AND, 0x0F).
		LitOp(filter.MUL, 2). // IHL is in 32-bit units; words are 16-bit
		LitOp(filter.ADD, 8). // Ethernet header (7 words) + 1 word into UDP
		PushInd().            // fetch the UDP destination port
		LitOp(filter.EQ, 7777).
		Program()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("extended filter (PUSHBYTE / arithmetic / PUSHIND):")
	fmt.Print(prog.String())

	s := sim.New(vtime.DefaultCosts())
	net := ethersim.New(s, ethersim.Ether10Mb)
	src := s.NewHost("src")
	dst := s.NewHost("dst")
	nicSrc := net.Attach(src, 1)
	dev := pfdev.Attach(net.Attach(dst, 2), nil,
		pfdev.Options{Extensions: true}) // extensions must be enabled per device

	var matched, total int
	s.Spawn(dst, "svc", func(p *sim.Proc) {
		port := dev.Open(p)
		if err := port.SetFilter(p, filter.Filter{Priority: 10, Program: prog}); err != nil {
			log.Fatal(err)
		}
		port.SetTimeout(p, 50*time.Millisecond)
		for {
			pkt, err := port.Read(p)
			if err != nil {
				return
			}
			matched++
			ihl := int(pkt.Data[14] & 0x0F)
			fmt.Printf("  matched packet with %d-byte IP header (%d option bytes)\n",
				4*ihl, 4*(ihl-5))
		}
	})
	s.Spawn(src, "traffic", func(p *sim.Proc) {
		p.Sleep(5 * time.Millisecond)
		for _, c := range []struct {
			ihl  int
			port uint16
		}{
			{5, 7777},  // no options, right port
			{5, 53},    // no options, wrong port
			{7, 7777},  // 8 bytes of options, right port
			{10, 7777}, // 20 bytes of options, right port
			{10, 53},   // options, wrong port
			{15, 7777}, // maximal header, right port
		} {
			nicSrc.Transmit(mkIPUDP(2, 1, c.ihl, c.port))
			total++
			p.Sleep(2 * time.Millisecond)
		}
	})
	s.Run(time.Second)
	fmt.Printf("matched %d of %d packets (want the 4 addressed to port 7777)\n",
		matched, total)
}
