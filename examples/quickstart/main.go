// Quickstart: build a packet filter with the run-time builder (§3.1's
// "library procedure"), inspect it, and evaluate it against packets
// with each of the engine's evaluation strategies.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ethersim"
	"repro/internal/pup"
)

func main() {
	// The paper's figure 3-9 filter: accept Pup packets whose
	// destination socket is 35, testing the most selective field
	// first with short-circuit operators.
	prog, err := core.NewBuilder().
		CANDWordEQ(8, 35). // low word of DstSocket == 35, else reject now
		CANDWordEQ(7, 0).  // high word == 0
		WordEQ(1, 2).      // Ethernet type == Pup
		Program()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("filter program (figure 3-9):")
	fmt.Print(prog.String())

	// Build two Pup packets on the 3 Mb experimental Ethernet.
	mk := func(socket uint32) []byte {
		pkt := pup.Packet{
			Type: pup.TypeEchoMe,
			Dst:  pup.PortAddr{Net: 1, Host: 2, Socket: socket},
			Src:  pup.PortAddr{Net: 1, Host: 1, Socket: 99},
			Data: []byte("hello"),
		}
		payload, err := pkt.Marshal()
		if err != nil {
			log.Fatal(err)
		}
		return ethersim.Ether3Mb.Encode(2, 1, ethersim.EtherTypePup3Mb, payload)
	}
	match, miss := mk(35), mk(36)

	// 1. The checked interpreter (the production engine of §4).
	for name, pkt := range map[string][]byte{"socket 35": match, "socket 36": miss} {
		r := core.Run(prog, pkt)
		fmt.Printf("checked interpreter, %s: accept=%v after %d instructions\n",
			name, r.Accept, r.Instrs)
	}

	// 2. Prevalidated (§7: hoist the per-instruction checks).
	pv, err := core.Prevalidate(prog, core.ValidateOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prevalidated: accept=%v (max stack %d, %d instructions)\n",
		pv.Run(match).Accept, pv.Info().MaxStack, pv.Info().Instrs)

	// 3. Compiled to closures (§7's "machine code").
	c, err := core.Compile(prog, core.ValidateOptions{}, core.Env{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: accept=%v\n", c.Run(match))

	// 4. A whole filter set merged into one decision table (§7).
	set := []core.Filter{
		{Priority: 10, Program: prog},
		core.DstSocketFilter(10, 36),
		core.DstSocketFilter(5, 99),
	}
	tbl := core.BuildTable(set)
	fmt.Printf("decision table: packet for socket 36 matches filter #%d\n",
		tbl.MatchBest(miss))
}
