// Pupecho runs the §5.1 scenario: the Pup protocol suite implemented
// entirely at user level over the packet filter.  Two hosts share a
// 3 Mb experimental Ethernet; one runs a Pup echo server, the other
// measures round-trip times and then transfers a file over BSP, the
// Pup byte-stream protocol — all without any Pup code in the "kernel".
//
//	go run ./examples/pupecho
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"repro/internal/ethersim"
	"repro/internal/pfdev"
	"repro/internal/pup"
	"repro/internal/sim"
	"repro/internal/vtime"
)

func main() {
	s := sim.New(vtime.DefaultCosts())
	net := ethersim.New(s, ethersim.Ether3Mb)
	server := s.NewHost("server")
	client := s.NewHost("client")
	devS := pfdev.Attach(net.Attach(server, 2), nil, pfdev.Options{})
	devC := pfdev.Attach(net.Attach(client, 1), nil, pfdev.Options{})

	echoAddr := pup.PortAddr{Net: 1, Host: 2, Socket: 0x30}
	fileAddr := pup.PortAddr{Net: 1, Host: 2, Socket: 0x31}

	// A name server so clients need no configured addresses: they
	// broadcast "where is echo?" on the well-known socket.
	ns := pup.NewNameServer(devS, pup.PortAddr{Net: 1, Host: 2})
	ns.Register("echo", echoAddr)
	ns.Register("fileserver", fileAddr)
	s.Spawn(server, "named", func(p *sim.Proc) { ns.Run(p, 300*time.Millisecond) })

	// The file our "file server" hands out.
	file := bytes.Repeat([]byte("the packet filter, 1987. "), 400) // ~10 KB

	// Server host: an echo daemon and a BSP file receiver-printer,
	// each a separate user process with its own filter.
	s.Spawn(server, "echod", func(p *sim.Proc) {
		sock, err := pup.Open(p, devS, echoAddr, 10)
		if err != nil {
			log.Fatal(err)
		}
		served := sock.EchoServer(p, 300*time.Millisecond)
		fmt.Printf("echod: served %d echoes\n", served)
	})
	s.Spawn(server, "bspd", func(p *sim.Proc) {
		sock, err := pup.Open(p, devS, fileAddr, 10)
		if err != nil {
			log.Fatal(err)
		}
		rcv := pup.NewBSPReceiver(sock, pup.DefaultBSPConfig())
		var got bytes.Buffer
		for {
			seg, err := rcv.Receive(p, 300*time.Millisecond)
			if err != nil {
				break
			}
			got.Write(seg)
		}
		fmt.Printf("bspd: received %d bytes, intact=%v\n",
			got.Len(), bytes.Equal(got.Bytes(), file))
	})

	// Client host: ping, then send the file.
	s.Spawn(client, "client", func(p *sim.Proc) {
		sock, err := pup.Open(p, devC, pup.PortAddr{Net: 1, Host: 1, Socket: 0x99}, 10)
		if err != nil {
			log.Fatal(err)
		}
		p.Sleep(5 * time.Millisecond)

		// Find the echo server by name rather than by address.
		echoDst, err := pup.LookupName(p, sock, "echo", 30*time.Millisecond, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("name lookup: echo is at %s\n", echoDst)

		for i := 0; i < 3; i++ {
			rtt, err := sock.Echo(p, echoDst, []byte("ping"), 50*time.Millisecond, 3)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("echo %d: %.2f mSec round trip\n",
				i+1, float64(rtt)/float64(time.Millisecond))
		}

		bspSock, err := pup.Open(p, devC, pup.PortAddr{Net: 1, Host: 1, Socket: 0x9A}, 10)
		if err != nil {
			log.Fatal(err)
		}
		snd := pup.NewBSPSender(bspSock, fileAddr, pup.DefaultBSPConfig())
		t0 := p.Now()
		if err := snd.Send(p, file); err != nil {
			log.Fatal(err)
		}
		if err := snd.Close(p); err != nil {
			log.Fatal(err)
		}
		elapsed := p.Now() - t0
		fmt.Printf("bsp: sent %d bytes in %.1f mSec (%.0f KB/s), %d retransmissions\n",
			len(file), float64(elapsed)/float64(time.Millisecond),
			float64(len(file))/1024/(float64(elapsed)/float64(time.Second)),
			snd.Retransmissions)
	})

	s.Run(5 * time.Second)
	fmt.Printf("wire carried %d frames\n", net.FramesOnWire)
}
