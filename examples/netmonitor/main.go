// Netmonitor is the §5.4 scenario as a library example: a workstation
// watching a busy Ethernet segment without disturbing it, while the
// kernel TCP stack and a user-level Pup application exchange real
// traffic.  The monitor's filter accepts everything at the highest
// priority with the copy-all option, so the monitored processes still
// receive their packets (§3.2), and each captured packet carries a
// kernel timestamp (§3.3).
//
//	go run ./examples/netmonitor
package main

import (
	"fmt"
	"time"

	"repro/internal/ethersim"
	"repro/internal/inet"
	"repro/internal/monitor"
	"repro/internal/pfdev"
	"repro/internal/pup"
	"repro/internal/sim"
	"repro/internal/vtime"
)

func main() {
	s := sim.New(vtime.DefaultCosts())
	net := ethersim.New(s, ethersim.Ether10Mb)

	alpha := s.NewHost("alpha")
	beta := s.NewHost("beta")
	watch := s.NewHost("watch")

	nicA := net.Attach(alpha, 0x0A)
	nicB := net.Attach(beta, 0x0B)
	nicW := net.Attach(watch, 0x0C)
	nicW.Promiscuous = true

	stackA := inet.NewStack(nicA, 0x0A00000A)
	stackB := inet.NewStack(nicB, 0x0A00000B)
	stackA.AddARP(stackB.Addr(), nicB.Addr())
	stackB.AddARP(stackA.Addr(), nicA.Addr())
	devA := pfdev.Attach(nicA, stackA, pfdev.Options{})
	devB := pfdev.Attach(nicB, stackB, pfdev.Options{})
	devW := pfdev.Attach(nicW, nil, pfdev.Options{})

	// The monitor.
	m := monitor.New(devW)
	m.Keep = 18
	s.Spawn(watch, "monitor", func(p *sim.Proc) { m.Run(p, 150*time.Millisecond) })

	// Kernel TCP conversation between alpha and beta.
	s.Spawn(beta, "tcpd", func(p *sim.Proc) {
		l, err := stackB.TCPListen(p, 80, inet.DefaultTCPConfig())
		if err != nil {
			return
		}
		c, err := l.Accept(p, time.Second)
		if err != nil {
			return
		}
		c.SetTimeout(time.Second)
		total := 0
		for {
			chunk, err := c.Read(p, 0)
			if err != nil {
				break
			}
			total += len(chunk)
		}
		fmt.Printf("tcpd: received %d bytes\n", total)
	})
	s.Spawn(alpha, "tcp-client", func(p *sim.Proc) {
		p.Sleep(3 * time.Millisecond)
		c, err := stackA.TCPDial(p, stackB.Addr(), 80, 4000, inet.DefaultTCPConfig())
		if err != nil {
			return
		}
		c.Write(p, make([]byte, 8*1024))
		c.Close(p)
	})

	// A user-level Pup exchange at the same time (figure 3-3's
	// coexistence of both models).
	echoAddr := pup.PortAddr{Net: 1, Host: 0x0B, Socket: 0x42}
	s.Spawn(beta, "pup-echod", func(p *sim.Proc) {
		sock, err := pup.Open(p, devB, echoAddr, 10)
		if err != nil {
			return
		}
		sock.EchoServer(p, 150*time.Millisecond)
	})
	s.Spawn(alpha, "pup-client", func(p *sim.Proc) {
		sock, err := pup.Open(p, devA, pup.PortAddr{Net: 1, Host: 0x0A, Socket: 0x41}, 10)
		if err != nil {
			return
		}
		p.Sleep(8 * time.Millisecond)
		for i := 0; i < 2; i++ {
			sock.Echo(p, echoAddr, []byte("probe"), 40*time.Millisecond, 2)
			p.Sleep(4 * time.Millisecond)
		}
	})

	s.Run(3 * time.Second)

	fmt.Println("\ncaptured trace:")
	for _, rec := range m.Records {
		fmt.Println(rec)
	}
	fmt.Printf("\n%s", m.Report())
}
