// Pfstat is the observability front end for the simulated packet
// filter: it drives the paper's mixed traffic profile (21% packet
// filter / 69% kernel IP / 10% ARP, §6.1) at a receiver with a
// configurable port population, watches the whole run through the
// virtual-time tracer, and reports where the kernel time went.
//
//	pfstat [-link 3mb|10mb] [-n packets] [-ports k] [-seed s]
//	       [-json] [-chrome file]
//
// With -live addr, pfstat instead connects to a running pfserve's
// control socket and renders that server's statistics — the same
// per-port, governor and provenance tables, fed by real packets.
//
// The default output is a set of text tables: event counters, queue
// gauges, arrival-to-delivery latency percentiles, the per-host
// kernel-time profile with its §6.1 packet-filter summary, per-port
// statistics, and the static instruction mix of the bound filters.
// -json emits the same data machine-readably; -chrome writes the full
// event stream as Chrome trace-event JSON, which opens in Perfetto
// (ui.perfetto.dev) as a per-host timeline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/ethersim"
	"repro/internal/filter"
	"repro/internal/inet"
	"repro/internal/live"
	"repro/internal/pfdev"
	"repro/internal/pup"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vtime"
	"repro/internal/workload"
)

func main() {
	linkName := flag.String("link", "10mb", "network type: 3mb or 10mb")
	n := flag.Int("n", 400, "packets of mixed traffic to generate")
	nPorts := flag.Int("ports", 8, "packet-filter ports at the receiver")
	ring := flag.Int("ring", 0, "map a shared-memory ring of this many slots on each Pup reader (0 = copying reads)")
	coalesce := flag.Int("coalesce", 0, "interrupt-coalescing budget at the receiver (0 or 1 = off)")
	coalesceDelay := flag.Duration("coalesce-delay", 2*time.Millisecond, "interrupt-moderation timer (with -coalesce)")
	seed := flag.Int64("seed", 42, "workload random seed")
	spans := flag.Bool("spans", false, "track per-packet provenance (sampling 1): per-stage latency breakdown, drop taxonomy and flight recorder")
	quota := flag.Bool("quota", false, "enable the resource governor and report per-port fuel, quarantines and admission sheds")
	hostile := flag.Int("hostile", 0, "bind this many adversarial max-length burn filters at the receiver")
	asJSON := flag.Bool("json", false, "emit the report as JSON")
	chromeFile := flag.String("chrome", "", "write Chrome trace-event JSON (Perfetto) to this file")
	liveAddr := flag.String("live", "", "read statistics from a running pfserve control socket at this address instead of simulating")
	flag.Parse()

	if *liveAddr != "" {
		liveReport(*liveAddr, *asJSON)
		return
	}

	link := ethersim.Ether3Mb
	if *linkName == "10mb" {
		link = ethersim.Ether10Mb
	} else if *linkName != "3mb" {
		fmt.Fprintln(os.Stderr, "pfstat: -link must be 3mb or 10mb")
		os.Exit(2)
	}
	if *nPorts < 1 {
		fmt.Fprintln(os.Stderr, "pfstat: -ports must be at least 1")
		os.Exit(2)
	}

	tr := trace.New()
	var rec *trace.Recorder
	if *chromeFile != "" {
		rec = &trace.Recorder{}
		tr.SetSink(rec)
	}
	var sp *trace.Spans
	if *spans {
		sp = tr.EnableSpans(trace.SpanConfig{Ring: 1 << 14})
		defer trace.DumpOnPanic(sp, os.Stderr)()
	}

	s := sim.New(vtime.DefaultCosts())
	s.SetTracer(tr)
	net := ethersim.New(s, link)
	src := s.NewHost("src")
	recv := s.NewHost("recv")
	nicSrc := net.Attach(src, 1)
	nicRecv := net.Attach(recv, 2)

	stack := inet.NewStack(nicRecv, 0x0A000002)
	devOpts := pfdev.Options{Reorder: true,
		CoalesceBudget: *coalesce, CoalesceDelay: *coalesceDelay}
	if *quota {
		devOpts.Gov = pfdev.DefaultGovConfig()
	}
	dev := pfdev.Attach(nicRecv, stack, devOpts)
	pfdev.Attach(nicSrc, nil, pfdev.Options{})

	// Adversarial ports: each binds the worst legal filter — maximum
	// length, never matches — so every frame on the wire charges the
	// receiver the full burn.  With -quota the governor quarantines
	// them; without it the report shows the damage.
	if *hostile > 0 {
		s.Spawn(recv, "hostile", func(p *sim.Proc) {
			for i := 0; i < *hostile; i++ {
				hp := dev.Open(p)
				if err := hp.SetFilter(p, filter.Filter{
					Priority: 20, Program: workload.BurnProgram(),
				}); err != nil {
					fmt.Fprintln(os.Stderr, "pfstat: hostile filter:", err)
					return
				}
			}
		})
	}

	// A kernel UDP sink so the IP share of the mix terminates in a
	// real protocol, and one Pup reader per packet-filter port.
	s.Spawn(recv, "udp-sink", func(p *sim.Proc) {
		u, err := stack.UDPBind(p, 1)
		if err != nil {
			return
		}
		u.SetTimeout(300 * time.Millisecond)
		for {
			if _, err := u.Recv(p); err != nil {
				return
			}
		}
	})
	sockets := make([]uint32, *nPorts)
	for i := range sockets {
		sockets[i] = uint32(0x100 + i)
		sock := sockets[i]
		s.Spawn(recv, fmt.Sprintf("pup-%d", i), func(p *sim.Proc) {
			ps, err := pup.Open(p, dev, pup.PortAddr{Net: 1, Host: 2, Socket: sock}, 10)
			if err != nil {
				return
			}
			ps.Batch = true
			if *ring > 0 {
				if err := ps.EnableRing(p, *ring); err != nil {
					fmt.Fprintln(os.Stderr, "pfstat: ring:", err)
				}
			}
			ps.SetTimeout(p, 300*time.Millisecond)
			for {
				if _, err := ps.Recv(p); err != nil {
					return
				}
			}
		})
	}

	gen := workload.NewGenerator(*seed, link, workload.PaperMix(), sockets)
	gen.SocketBias = 0.4
	s.Spawn(src, "traffic", func(p *sim.Proc) {
		p.Sleep(time.Duration(20+4**nPorts) * time.Millisecond)
		gen.Drive(p, nicSrc, 2, *n, 4*time.Millisecond)
	})
	s.Run(5 * time.Minute)

	// Collect the per-port statistics with a real status-read ioctl.
	var ports []pfdev.PortStats
	var gov pfdev.GovStats
	s.Spawn(recv, "pfstat", func(p *sim.Proc) {
		ports = dev.PortStats(p)
		if *quota {
			gov = dev.GovStats(p)
		}
	})
	s.Run(0)

	snap := tr.Snapshot()
	var taxonomy map[string]uint64
	if sp != nil {
		taxonomy = make(map[string]uint64)
		for i, n := range sp.Drops {
			if n > 0 {
				taxonomy[trace.DropReason(i).String()] = n
			}
		}
	}
	if *asJSON {
		report := struct {
			Trace *trace.Snapshot   `json:"trace"`
			Ports []pfdev.PortStats `json:"ports"`
			Spans *trace.Spans      `json:"spans,omitempty"`
			Drops map[string]uint64 `json:"drop_taxonomy,omitempty"`
			Gov   *pfdev.GovStats   `json:"gov,omitempty"`
		}{Trace: snap, Ports: ports, Spans: sp, Drops: taxonomy}
		if *quota {
			report.Gov = &gov
		}
		raw, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "pfstat:", err)
			os.Exit(1)
		}
		fmt.Println(string(raw))
	} else {
		fmt.Print(snap.Text())
		printPortTable(ports)
		if *quota {
			printGovTable(gov, ports)
		}

		// Every reader binds the same socket-demux program shape;
		// its static instruction mix explains the pf.instrs column.
		mix := filter.MixOf(pup.SocketFilter(link, 10, sockets[0]).Program)
		fmt.Printf("\nbound filter mix (per port): %s\n", mix)

		c := recv.Counters
		fmt.Printf("\nreceiver interrupt load: %d kernel entries", c.KernelEntries)
		if c.PacketsIn > 0 {
			fmt.Printf(" (%.2f per packet in)", float64(c.KernelEntries)/float64(c.PacketsIn))
		}
		fmt.Println()
		if c.Bursts > 0 {
			fmt.Printf("interrupt coalescing: %d bursts, %d frames coalesced (%.1f frames/burst)\n",
				c.Bursts, c.CoalescedFrames, float64(c.CoalescedFrames)/float64(c.Bursts))
		}
		if sp != nil {
			fmt.Println("\nper-packet provenance (sampling 1)")
			printStageHeader()
			stages := []struct{ label, hist string }{
				{"wire", "span.stage.wire"},
				{"nic", "span.stage.nic"},
				{"filter", "span.stage.filter"},
				{"pf", "span.stage.pf"},
				{"queue", "span.stage.queue"},
			}
			for _, st := range stages {
				h := tr.Histogram("recv", st.hist)
				printStageRow(st.label, uint64(h.Count()), h.Mean(), h.Quantile(0.50), h.Quantile(0.99))
			}
			h := sp.Total()
			printStageRow("total", uint64(h.Count()), h.Mean(), h.Quantile(0.50), h.Quantile(0.99))
			fmt.Printf("\nflight recorder: %d spans created, %d delivered to users, %d to kernel protocols, %d dropped, %d live\n",
				sp.Created, sp.DeliveredUser, sp.DeliveredKernel, sp.TotalDrops(), sp.Live())
			if len(taxonomy) > 0 {
				fmt.Println("drop taxonomy")
				for i, n := range sp.Drops {
					if n > 0 {
						fmt.Printf("  %-12s %8d\n", trace.DropReason(i), n)
					}
				}
			}
		}
	}

	if *chromeFile != "" {
		f, err := os.Create(*chromeFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pfstat:", err)
			os.Exit(1)
		}
		defer f.Close()
		var recs []trace.SpanRecord
		if sp != nil {
			recs = sp.RecordsSnapshot()
		}
		if err := trace.WriteChromeTraceSpans(f, rec.Events, recs); err != nil {
			fmt.Fprintln(os.Stderr, "pfstat:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pfstat: wrote %d trace events to %s\n", len(rec.Events), *chromeFile)
	}
}

// printPortTable renders the per-port statistics table — shared by the
// simulated run and -live mode, which feeds it the same PortStats
// structs fetched over the control socket.
func printPortTable(ports []pfdev.PortStats) {
	fmt.Println("\nper-port statistics")
	fmt.Printf("  %4s %4s %6s %5s %5s %8s %8s %6s %7s %7s %5s %8s %8s\n",
		"port", "prio", "queued", "maxq", "drops", "matched", "instrs",
		"reads", "batches", "batched", "reaps", "copiedB", "mappedB")
	for _, ps := range ports {
		fmt.Printf("  %4d %4d %6d %5d %5d %8d %8d %6d %7d %7d %5d %8d %8d\n",
			ps.ID, ps.Priority, ps.Queued, ps.MaxQueued, ps.Dropped,
			ps.Matched, ps.FilterInstrs, ps.Reads, ps.BatchReads, ps.BatchPackets,
			ps.RingReaps, ps.BytesCopied, ps.BytesMapped)
	}
}

// printGovTable renders the resource-governor block.
func printGovTable(gov pfdev.GovStats, ports []pfdev.PortStats) {
	fmt.Println("\nresource governor")
	fmt.Printf("  admission: %d frames shed, backlog %d, shedding=%v\n",
		gov.AdmissionSheds, gov.Backlog, gov.Shedding)
	fmt.Printf("  quarantine: %d quarantines, %d filter evaluations skipped\n",
		gov.Quarantines, gov.QuarantineSkips)
	fmt.Printf("  fuel: %d instruction units charged across all ports\n", gov.FuelSpent)
	fmt.Printf("  %4s %4s %10s %11s %9s %12s\n",
		"port", "prio", "fuel", "quarantines", "skips", "residency")
	for _, ps := range ports {
		fmt.Printf("  %4d %4d %10d %11d %9d %12v\n",
			ps.ID, ps.Priority, ps.FuelSpent, ps.Quarantines,
			ps.QuarantineSkips, ps.AvgResidency)
	}
}

func printStageHeader() {
	fmt.Printf("  %-8s %8s %12s %12s %12s\n", "stage", "count", "mean", "p50", "p99")
}

func printStageRow(label string, count uint64, mean, p50, p99 time.Duration) {
	fmt.Printf("  %-8s %8d %12v %12v %12v\n", label, count, mean, p50, p99)
}

// liveReport fetches a running pfserve's statistics over its control
// socket and renders them with the same tables the simulated report
// uses.
func liveReport(addr string, asJSON bool) {
	ctl, err := live.DialControl(addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pfstat: live:", err)
		os.Exit(1)
	}
	defer ctl.Close()
	st, err := ctl.Stats()
	if err != nil {
		fmt.Fprintln(os.Stderr, "pfstat: live:", err)
		os.Exit(1)
	}

	if asJSON {
		raw, err := json.MarshalIndent(st, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "pfstat:", err)
			os.Exit(1)
		}
		fmt.Println(string(raw))
		return
	}

	fmt.Printf("pfserve at %s (live mode)\n", addr)
	fmt.Printf("device: %d frames received, %d kernel drops, %d queued now\n",
		st.Device.Received, st.Device.KernelDrops, st.Device.QueuedNow)
	if st.Wire != nil {
		fmt.Printf("wire: %d datagrams received, %d bytes\n",
			st.Wire.Received, st.Wire.RxBytes)
	}
	printPortTable(st.Ports)
	if st.Gov != nil {
		printGovTable(*st.Gov, st.Ports)
	}
	if st.Spans != nil {
		fmt.Println("\nper-packet provenance (sampling 1)")
		printStageHeader()
		for _, sl := range st.Stages {
			printStageRow(sl.Stage, sl.Count, sl.Mean, sl.P50, sl.P99)
		}
		printStageRow("total", st.Spans.Created-st.Spans.Live,
			st.Spans.TotalMean, st.Spans.TotalP50, st.Spans.TotalP99)
		fmt.Printf("\nflight recorder: %d spans created, %d delivered to users, %d to kernel protocols, %d dropped, %d live\n",
			st.Spans.Created, st.Spans.DeliveredUser, st.Spans.DeliveredKernel,
			st.Spans.TotalDrops, st.Spans.Live)
		if len(st.Spans.Drops) > 0 {
			fmt.Println("drop taxonomy")
			for name, n := range st.Spans.Drops {
				fmt.Printf("  %-12s %8d\n", name, n)
			}
		}
	}
}
