// Pfbench regenerates every table and figure from the paper's
// evaluation on the simulated substrate and prints them in the paper's
// layout.  Run with -id to select one experiment:
//
//	pfbench                  # run everything
//	pfbench -id t6-2         # just table 6-2
//	pfbench -exp shm         # the shared-memory copy ablation (= -id exp-shm)
//	pfbench -exp shm -shm-n 8  # same, at a tiny packet count (CI smoke)
//	pfbench -list            # list experiment ids
//	pfbench -json            # tables as JSON
//	pfbench -id s6-1 -trace  # also print the trace-derived kernel profile
//	pfbench -chrome out.json # dump the runs as a Chrome/Perfetto trace
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/trace"
)

func main() {
	id := flag.String("id", "", "run only the experiment with this id")
	exp := flag.String("exp", "", "alias for -id; short names resolve to exp-<name>")
	shmN := flag.Int("shm-n", 0, "packets per exp-shm measurement (0 = default)")
	coalesceN := flag.Int("coalesce-n", 0, "packets per exp-coalesce measurement (0 = default)")
	scaleN := flag.Int("scale-n", 0, "packets per exp-scale cell (0 = default)")
	stormN := flag.Int("storm-n", 0, "victim packets per exp-storm cell (0 = default)")
	churnN := flag.Int("churn-n", 0, "packets per exp-churn cell (0 = default)")
	mqN := flag.Int("mq-n", 0, "packets per exp-mq cell (0 = default)")
	parallel := flag.Int("parallel", 0, "worker pool for sweep cells (0 = GOMAXPROCS, 1 = sequential; forced to 1 under -trace)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	md := flag.Bool("md", false, "emit markdown instead of aligned text")
	asJSON := flag.Bool("json", false, "emit tables (and any trace snapshot) as JSON")
	withTrace := flag.Bool("trace", false, "run under a tracer and report the metrics snapshot")
	chromeFile := flag.String("chrome", "", "write a Chrome trace-event JSON of the runs to this file")
	flag.Parse()
	if *id == "" {
		*id = *exp
	}
	if *shmN > 0 {
		bench.ShmCount = *shmN
	}
	if *coalesceN > 0 {
		bench.CoalesceCount = *coalesceN
	}
	if *scaleN > 0 {
		bench.ScaleCount = *scaleN
	}
	if *stormN > 0 {
		bench.StormCount = *stormN
	}
	if *churnN > 0 {
		bench.ChurnCount = *churnN
	}
	if *mqN > 0 {
		bench.MQCount = *mqN
	}
	bench.Workers = *parallel

	var tr *trace.Tracer
	var rec *trace.Recorder
	if *withTrace || *chromeFile != "" || (*asJSON && *withTrace) {
		tr = trace.New()
		if *chromeFile != "" {
			rec = &trace.Recorder{}
			tr.SetSink(rec)
		}
		// The flight recorder rides along whenever the suite runs under
		// observation: if an experiment panics, the last 4096 packet
		// provenance records go to stderr before the crash propagates.
		defer trace.DumpOnPanic(tr.EnableSpans(trace.SpanConfig{}), os.Stderr)()
		bench.Tracer = tr
	}

	exps := bench.Experiments()
	if *list {
		for _, e := range exps {
			t := e.Run()
			fmt.Printf("%-12s %s\n", t.ID, t.Title)
		}
		return
	}
	// Run only the selected experiments: with -id and -trace this keeps
	// the metrics snapshot scoped to that experiment's rigs.
	var selected []bench.Table
	for _, e := range exps {
		if *id != "" && e.ID != *id && e.ID != "exp-"+*id {
			continue
		}
		selected = append(selected, e.Run())
	}
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "pfbench: no experiment %q; registered experiments:\n", *id)
		for _, e := range exps {
			fmt.Fprintf(os.Stderr, "  %s\n", e.ID)
		}
		os.Exit(1)
	}

	switch {
	case *asJSON:
		report := struct {
			Tables []bench.Table   `json:"tables"`
			Trace  *trace.Snapshot `json:"trace,omitempty"`
		}{Tables: selected}
		if tr != nil {
			report.Trace = tr.Snapshot()
		}
		raw, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "pfbench:", err)
			os.Exit(1)
		}
		fmt.Println(string(raw))
	case *md:
		for _, t := range selected {
			fmt.Println(t.Markdown())
		}
	default:
		for _, t := range selected {
			fmt.Println(t)
		}
	}

	if tr != nil && !*asJSON {
		fmt.Println("--- trace snapshot (selected experiment rigs) ---")
		fmt.Print(tr.Snapshot().Text())
	}
	if *chromeFile != "" {
		f, err := os.Create(*chromeFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pfbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := trace.WriteChromeTrace(f, rec.Events); err != nil {
			fmt.Fprintln(os.Stderr, "pfbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pfbench: wrote %d trace events to %s\n", len(rec.Events), *chromeFile)
	}
}
