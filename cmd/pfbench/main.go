// Pfbench regenerates every table and figure from the paper's
// evaluation on the simulated substrate and prints them in the paper's
// layout.  Run with -id to select one experiment:
//
//	pfbench            # run everything
//	pfbench -id t6-2   # just table 6-2
//	pfbench -list      # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	id := flag.String("id", "", "run only the experiment with this id")
	list := flag.Bool("list", false, "list experiment ids and exit")
	md := flag.Bool("md", false, "emit markdown instead of aligned text")
	flag.Parse()

	tables := bench.All()
	if *list {
		for _, t := range tables {
			fmt.Printf("%-12s %s\n", t.ID, t.Title)
		}
		return
	}
	found := false
	for _, t := range tables {
		if *id != "" && t.ID != *id {
			continue
		}
		found = true
		if *md {
			fmt.Println(t.Markdown())
		} else {
			fmt.Println(t)
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "pfbench: no experiment %q (try -list)\n", *id)
		os.Exit(1)
	}
}
