// Pfchaos runs the full protocol suite over a deterministically
// hostile network and prints the fault ledger, each protocol's
// recovery statistics, and the trace-derived metrics — then proves the
// injector's ledger and the trace registry agree on every fault count.
//
//	pfchaos                    # the "lossy" plan, seed 1
//	pfchaos -plan crashy       # wire faults plus host pause/crash
//	pfchaos -plan hostile -seed 7
//	pfchaos -runs 8            # seeds 1..8, reports in seed order
//	pfchaos -runs 8 -parallel 4  # same reports, 4 universes at a time
//	pfchaos -list              # list built-in plans
//	pfchaos -json              # machine-readable report
//
// The same (seed, plan) pair always reproduces the same run, byte for
// byte — chaos you can put under version control.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/ethersim"
	"repro/internal/faults"
	"repro/internal/parsim"
	"repro/internal/pfdev"
	"repro/internal/pup"
	"repro/internal/rarp"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vmtp"
	"repro/internal/vtime"
)

// report is the machine-readable run summary.
type report struct {
	Plan     string          `json:"plan"`
	Seed     uint64          `json:"seed"`
	End      time.Duration   `json:"end_virtual"`
	Ledger   faults.Ledger   `json:"ledger"`
	Protos   protoStats      `json:"protocols"`
	Reconcil bool            `json:"ledger_matches_registry"`
	Gov      *pfdev.GovStats `json:"gov,omitempty"` // summed over hosts, with -gov
}

// protoStats collects every protocol's recovery accounting.
type protoStats struct {
	BSPOK        bool         `json:"bsp_ok"`
	BSP          pup.BSPStats `json:"bsp"`
	BSPDelivered int          `json:"bsp_delivered"`
	BSPDupes     int          `json:"bsp_duplicates_suppressed"`

	EFTPOK bool          `json:"eftp_ok"`
	EFTP   pup.EFTPStats `json:"eftp"`

	VMTPOK      bool           `json:"vmtp_ok"`
	VMTP        vmtp.UserStats `json:"vmtp"`
	VMTPRebinds int            `json:"vmtp_rebinds"`

	LookupOK bool            `json:"name_lookup_ok"`
	Lookup   pup.LookupStats `json:"name_lookup"`

	RARPOK bool              `json:"rarp_ok"`
	RARP   rarp.ResolveStats `json:"rarp"`

	EchoServed  int `json:"echo_served"`
	EchoRebinds int `json:"echo_rebinds"`
}

func main() {
	planName := flag.String("plan", "lossy", "fault plan (see -list)")
	seed := flag.Uint64("seed", 1, "fault schedule seed")
	runs := flag.Int("runs", 1, "number of consecutive seeds to run, starting at -seed")
	parallel := flag.Int("parallel", 0, "worker pool for multi-seed runs (0 = GOMAXPROCS, 1 = sequential)")
	list := flag.Bool("list", false, "list built-in plans and exit")
	gov := flag.Bool("gov", false, "run every device under the resource governor (quotas, quarantine, admission control)")
	asJSON := flag.Bool("json", false, "emit the report as JSON")
	flag.Parse()

	if *list {
		for _, name := range faults.PlanNames() {
			p, _ := faults.Named(name)
			fmt.Printf("%-8s wire %.0f%%, %d host events, %d squeezes\n",
				name, p.Wire.Rate()*100, len(p.Hosts), len(p.Squeezes))
		}
		return
	}
	plan, ok := faults.Named(*planName)
	if !ok {
		fmt.Fprintf(os.Stderr, "pfchaos: no plan %q (try -list)\n", *planName)
		os.Exit(1)
	}

	if *runs < 1 {
		*runs = 1
	}
	// Every seed is an isolated universe, so the sweep fans out across
	// the parsim pool; reports come back in seed order, making the
	// output byte-identical at any worker count.
	type outcome struct {
		rep  report
		snap *trace.Snapshot
	}
	outs := parsim.Map(*runs, *parallel, func(i int) outcome {
		rep, snap := run(*seed+uint64(i), plan, *gov)
		return outcome{rep, snap}
	})

	if *asJSON {
		type entry struct {
			report
			Trace *trace.Snapshot `json:"trace"`
		}
		var payload any
		if *runs == 1 {
			payload = entry{outs[0].rep, outs[0].snap}
		} else {
			entries := make([]entry, len(outs))
			for i, o := range outs {
				entries[i] = entry{o.rep, o.snap}
			}
			payload = entries
		}
		raw, err := json.MarshalIndent(payload, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "pfchaos:", err)
			os.Exit(1)
		}
		fmt.Println(string(raw))
	} else {
		for i, o := range outs {
			if i > 0 {
				fmt.Println()
				fmt.Println("========")
				fmt.Println()
			}
			printReport(o.rep, o.snap)
		}
	}
	bad := false
	for _, o := range outs {
		if !o.rep.Reconcil {
			fmt.Fprintf(os.Stderr, "pfchaos: seed %d: fault ledger does not match the trace registry\n", o.rep.Seed)
			bad = true
		}
	}
	if bad {
		os.Exit(1)
	}
}

// run executes the scenario: four hosts on one 10 Mb Ethernet — alpha
// and beta as workhorses, charlie as client, diskless booting via RARP
// — with every protocol exercised while the plan's faults land.
func run(seed uint64, plan faults.Plan, gov bool) (report, *trace.Snapshot) {
	s := sim.New(vtime.DefaultCosts())
	tr := trace.New()
	s.SetTracer(tr)

	net := ethersim.New(s, ethersim.Ether10Mb)
	alpha, beta := s.NewHost("alpha"), s.NewHost("beta")
	charlie, diskless := s.NewHost("charlie"), s.NewHost("diskless")
	nicA := net.Attach(alpha, 0xA1)
	nicB := net.Attach(beta, 0xB2)
	nicC := net.Attach(charlie, 0xC3)
	nicD := net.Attach(diskless, 0xD4)
	var opt pfdev.Options
	if gov {
		opt.Gov = pfdev.DefaultGovConfig()
	}
	devA := pfdev.Attach(nicA, nil, opt)
	devB := pfdev.Attach(nicB, nil, opt)
	devC := pfdev.Attach(nicC, nil, opt)
	devD := pfdev.Attach(nicD, nil, opt)

	eng := faults.New(s, seed, plan)
	eng.AttachWire(net)
	for _, h := range s.Hosts() {
		eng.AttachHost(h)
	}
	for _, d := range []*pfdev.Device{devA, devB, devC, devD} {
		eng.AttachQueues(d)
	}

	var rep report
	rep.Plan, rep.Seed = plan.Name, seed
	idle := 3 * time.Second

	// --- Name service on alpha ------------------------------------
	ns := pup.NewNameServer(devA, pup.PortAddr{Net: 1, Host: 0xA1})
	ns.Register("echo", pup.PortAddr{Net: 1, Host: 0xB2, Socket: 0x30})
	s.Spawn(alpha, "named", func(p *sim.Proc) { ns.Run(p, idle) })

	// --- Echo server on beta (survives crashes by re-binding) -----
	var echoSock *pup.Socket
	echoServed := 0
	s.Spawn(beta, "echod", func(p *sim.Proc) {
		sock, err := pup.Open(p, devB, pup.PortAddr{Net: 1, Host: 0xB2, Socket: 0x30}, 10)
		if err != nil {
			return
		}
		echoSock = sock
		echoServed = sock.EchoServer(p, idle)
	})

	// --- Charlie: name lookup, then echo through the answer -------
	s.Spawn(charlie, "client", func(p *sim.Proc) {
		sock, err := pup.Open(p, devC, pup.PortAddr{Net: 1, Host: 0xC3, Socket: 0x31}, 10)
		if err != nil {
			return
		}
		sock.Checksummed = true
		p.Sleep(5 * time.Millisecond)
		addr, lst, err := pup.LookupNameStats(p, sock, "echo", 50*time.Millisecond, 8)
		rep.Protos.Lookup = lst
		if err != nil {
			return
		}
		rep.Protos.LookupOK = true
		if _, err := sock.Echo(p, addr, []byte("chaos?"), 80*time.Millisecond, 8); err == nil {
			// served count tallied by the server side
			_ = addr
		}
	})

	// --- BSP: beta -> alpha, checksummed --------------------------
	bspData := make([]byte, 4096)
	for i := range bspData {
		bspData[i] = byte(i)
	}
	bspAddr := pup.PortAddr{Net: 1, Host: 0xA1, Socket: 0x500}
	var bspRcv *pup.BSPReceiver
	s.Spawn(alpha, "bsp-recv", func(p *sim.Proc) {
		sock, err := pup.Open(p, devA, bspAddr, 10)
		if err != nil {
			return
		}
		sock.Checksummed = true
		bspRcv = pup.NewBSPReceiver(sock, pup.DefaultBSPConfig())
		var got []byte
		for {
			seg, err := bspRcv.Receive(p, idle)
			if err != nil {
				break
			}
			got = append(got, seg...)
		}
		rep.Protos.BSPOK = string(got) == string(bspData)
	})
	var bspSnd *pup.BSPSender
	s.Spawn(beta, "bsp-send", func(p *sim.Proc) {
		sock, err := pup.Open(p, devB, pup.PortAddr{Net: 1, Host: 0xB2, Socket: 0x501}, 10)
		if err != nil {
			return
		}
		sock.Checksummed = true
		p.Sleep(2 * time.Millisecond)
		bspSnd = pup.NewBSPSender(sock, bspAddr, pup.DefaultBSPConfig())
		if bspSnd.Send(p, bspData) == nil {
			bspSnd.Close(p)
		}
	})

	// --- EFTP: alpha -> charlie, checksummed ----------------------
	eftpData := make([]byte, 3000)
	for i := range eftpData {
		eftpData[i] = byte(i * 7)
	}
	eftpAddr := pup.PortAddr{Net: 1, Host: 0xC3, Socket: 0x600}
	eftpCfg := pup.DefaultEFTPConfig()
	eftpCfg.Retries = 16
	eftpCfg.Stats = &rep.Protos.EFTP
	s.Spawn(charlie, "eftp-recv", func(p *sim.Proc) {
		sock, err := pup.Open(p, devC, eftpAddr, 10)
		if err != nil {
			return
		}
		sock.Checksummed = true
		got, err := pup.EFTPReceive(p, sock, idle, eftpCfg)
		rep.Protos.EFTPOK = err == nil && string(got) == string(eftpData)
	})
	s.Spawn(alpha, "eftp-send", func(p *sim.Proc) {
		sock, err := pup.Open(p, devA, pup.PortAddr{Net: 1, Host: 0xA1, Socket: 0x601}, 10)
		if err != nil {
			return
		}
		sock.Checksummed = true
		p.Sleep(3 * time.Millisecond)
		pup.EFTPSend(p, sock, eftpAddr, eftpData, eftpCfg)
	})

	// --- User-level VMTP: charlie calls beta, checksummed ---------
	vcfg := vmtp.DefaultUserConfig()
	vcfg.Checksummed = true
	s.Spawn(beta, "uvmtpd", func(p *sim.Proc) {
		ep, err := vmtp.NewUserEndpoint(p, devB, 800, vcfg)
		if err != nil {
			return
		}
		ep.Serve(p, func(op uint16, req []byte) []byte { return req }, idle)
	})
	s.Spawn(charlie, "uvmtp-client", func(p *sim.Proc) {
		ep, err := vmtp.NewUserEndpoint(p, devC, 801, vcfg)
		if err != nil {
			return
		}
		p.Sleep(4 * time.Millisecond)
		ok := true
		blob := make([]byte, 600)
		for i := 0; i < 3; i++ {
			resp, err := ep.Call(p, nicB.Addr(), 800, uint16(i), blob)
			if err != nil || len(resp) != len(blob) {
				ok = false
				break
			}
		}
		rep.Protos.VMTPOK = ok
		rep.Protos.VMTP = ep.Stats
		rep.Protos.VMTPRebinds = ep.Rebinds
	})

	// --- RARP: diskless boots off a server on alpha ---------------
	rsrv := rarp.NewServer(devA, map[ethersim.Addr]rarp.IPAddr{0xD4: 0x0A0000D4})
	s.Spawn(alpha, "rarpd", func(p *sim.Proc) { rsrv.Run(p, idle) })
	s.Spawn(diskless, "boot", func(p *sim.Proc) {
		p.Sleep(8 * time.Millisecond)
		ip, st, err := rarp.ResolveWithStats(p, devD, 40*time.Millisecond, 8)
		rep.Protos.RARP = st
		rep.Protos.RARPOK = err == nil && ip == 0x0A0000D4
	})

	rep.End = s.Run(60 * time.Second)
	rep.Ledger = eng.Ledger
	if bspRcv != nil {
		rep.Protos.BSPDelivered = bspRcv.Delivered
		rep.Protos.BSPDupes = bspRcv.Duplicates
	}
	if bspSnd != nil {
		rep.Protos.BSP = bspSnd.Stats
	}
	rep.Protos.EchoServed = echoServed
	if echoSock != nil {
		rep.Protos.EchoRebinds = echoSock.Rebinds
	}
	if gov {
		// Sum governor accounting across the four hosts with real
		// status ioctls; a soak that quarantined or shed anything shows
		// it here (and in the DropQuota/DropAdmission taxonomy rows).
		total := pfdev.GovStats{}
		hosts := []*sim.Host{alpha, beta, charlie, diskless}
		for i, d := range []*pfdev.Device{devA, devB, devC, devD} {
			dev := d
			s.Spawn(hosts[i], "govstat", func(p *sim.Proc) {
				gs := dev.GovStats(p)
				total.AdmissionSheds += gs.AdmissionSheds
				total.Quarantines += gs.Quarantines
				total.QuarantineSkips += gs.QuarantineSkips
				total.FuelSpent += gs.FuelSpent
				total.Backlog += gs.Backlog
			})
		}
		s.Run(0)
		rep.Gov = &total
	}

	snap := tr.Snapshot()
	rep.Reconcil = reconcile(rep.Ledger, snap)
	return rep, snap
}

// reconcile checks the injector's ledger against the trace registry's
// fault.<kind> counters, summed across hosts: the two are written at
// different layers and must agree exactly.
func reconcile(l faults.Ledger, snap *trace.Snapshot) bool {
	for kind, want := range l.ByKind() {
		var got uint64
		for _, c := range snap.Counters {
			if c.Name == "fault."+kind {
				got += c.Value
			}
		}
		if got != want {
			return false
		}
	}
	return true
}

func printReport(rep report, snap *trace.Snapshot) {
	fmt.Printf("plan %q, seed %d — ended at %v (virtual)\n\n", rep.Plan, rep.Seed, rep.End)
	fmt.Println("fault ledger:")
	fmt.Printf("  %s\n\n", rep.Ledger.String())

	okStr := func(ok bool) string {
		if ok {
			return "ok"
		}
		return "FAILED"
	}
	fmt.Println("protocol recovery:")
	p := rep.Protos
	fmt.Printf("  bsp    %-6s  %d segs, %d attempts, %d retransmits, %d timeouts, max RTO %v; rx %d delivered, %d dupes suppressed\n",
		okStr(p.BSPOK), p.BSP.Segments, p.BSP.Attempts, p.BSP.Retransmissions,
		p.BSP.Timeouts, p.BSP.MaxRTOReached, p.BSPDelivered, p.BSPDupes)
	fmt.Printf("  eftp   %-6s  %d blocks, %d attempts, %d retransmits\n",
		okStr(p.EFTPOK), p.EFTP.Blocks, p.EFTP.Attempts, p.EFTP.Retransmissions)
	fmt.Printf("  vmtp   %-6s  %d calls, %d attempts, %d retransmits, %d checksum drops, %d rebinds\n",
		okStr(p.VMTPOK), p.VMTP.Calls, p.VMTP.Attempts, p.VMTP.Retransmissions,
		p.VMTP.ChecksumDrops, p.VMTPRebinds)
	fmt.Printf("  lookup %-6s  %d attempts\n", okStr(p.LookupOK), p.Lookup.Attempts)
	fmt.Printf("  rarp   %-6s  %d attempts\n", okStr(p.RARPOK), p.RARP.Attempts)
	fmt.Printf("  echo   served %d, rebinds %d\n\n", p.EchoServed, p.EchoRebinds)
	if rep.Gov != nil {
		fmt.Printf("resource governor (all hosts): %d quarantines, %d evaluations skipped, %d frames shed, %d instruction units charged\n\n",
			rep.Gov.Quarantines, rep.Gov.QuarantineSkips, rep.Gov.AdmissionSheds, rep.Gov.FuelSpent)
	}

	fmt.Println("ledger vs registry:", map[bool]string{true: "exact match", false: "MISMATCH"}[rep.Reconcil])
	fmt.Println()
	fmt.Println("--- trace snapshot ---")
	fmt.Print(snap.Text())
}
