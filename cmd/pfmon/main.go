// Pfmon is the §5.4 network monitor as a command-line tool: it builds
// a simulated Ethernet, drives the paper's mixed traffic profile over
// it (plus a Pup echo exchange so there is real protocol traffic to
// watch), captures everything through a promiscuous packet-filter port
// with the copy-all option, and prints a tcpdump-style trace and
// per-protocol statistics.
//
//	pfmon [-link 3mb|10mb] [-n packets] [-lines n] [-seed s]
//	      [-filter expr] [-ring slots] [-w file] [-r file] [-json] [-trace file]
//
// -ring captures through a mapped shared-memory ring instead of
// copying reads, the zero-copy path busy segments need.
//
// -w saves the capture to a trace file; -r skips the simulation and
// analyzes a previously saved trace instead ("all the tools of the
// workstation are available for manipulating and analyzing packet
// traces", §5.4).
//
// -json prints the run's virtual-time metrics snapshot (counters,
// latency percentiles, kernel profile); -trace writes the full event
// stream as Chrome trace-event JSON, which opens in Perfetto.
//
// -filter takes a tcpdump-style expression (see internal/fexpr), e.g.
// 'pup and pup dstsocket 0x123' or 'not ip', applied in the simulated
// kernel; the copy-all option still lets the monitored traffic
// through.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/ethersim"
	"repro/internal/fexpr"
	"repro/internal/inet"
	"repro/internal/monitor"
	"repro/internal/pfdev"
	"repro/internal/pup"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vtime"
	"repro/internal/workload"
)

func main() {
	linkName := flag.String("link", "3mb", "network type: 3mb or 10mb")
	n := flag.Int("n", 60, "background packets to generate")
	lines := flag.Int("lines", 25, "trace lines to print")
	seed := flag.Int64("seed", 1, "workload random seed")
	filterExpr := flag.String("filter", "", "capture filter expression (fexpr syntax)")
	writeFile := flag.String("w", "", "save the capture to this trace file")
	readFile := flag.String("r", "", "analyze a saved trace file instead of simulating")
	ring := flag.Int("ring", 0, "capture through a shared-memory ring of this many slots (0 = copying reads)")
	asJSON := flag.Bool("json", false, "print the virtual-time metrics snapshot as JSON")
	traceFile := flag.String("trace", "", "write Chrome trace-event JSON (Perfetto) to this file")
	flag.Parse()

	if *readFile != "" {
		if *asJSON || *traceFile != "" {
			fmt.Fprintln(os.Stderr, "pfmon: -json/-trace need a live simulation; ignored with -r")
		}
		f, err := os.Open(*readFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pfmon:", err)
			os.Exit(1)
		}
		defer f.Close()
		m := monitor.New(nil)
		m.Keep = *lines
		if _, err := m.LoadTrace(f); err != nil {
			fmt.Fprintln(os.Stderr, "pfmon:", err)
			os.Exit(1)
		}
		fmt.Printf("trace (first %d packets):\n", len(m.Records))
		for _, rec := range m.Records {
			fmt.Println(rec)
		}
		fmt.Printf("\n%s", m.Report())
		return
	}

	link := ethersim.Ether3Mb
	if *linkName == "10mb" {
		link = ethersim.Ether10Mb
	} else if *linkName != "3mb" {
		fmt.Fprintln(os.Stderr, "pfmon: -link must be 3mb or 10mb")
		os.Exit(2)
	}

	s := sim.New(vtime.DefaultCosts())
	var tr *trace.Tracer
	var rec *trace.Recorder
	if *asJSON || *traceFile != "" {
		tr = trace.New()
		if *traceFile != "" {
			rec = &trace.Recorder{}
			tr.SetSink(rec)
		}
		s.SetTracer(tr)
	}
	net := ethersim.New(s, link)
	src := s.NewHost("src")
	dst := s.NewHost("dst")
	mon := s.NewHost("monitor")

	nicSrc := net.Attach(src, 1)
	nicDst := net.Attach(dst, 2)
	nicMon := net.Attach(mon, 3)
	nicMon.Promiscuous = true // a monitor watches the whole segment

	stack := inet.NewStack(nicDst, 0x0A000002)
	devDst := pfdev.Attach(nicDst, stack, pfdev.Options{})
	devSrc := pfdev.Attach(nicSrc, nil, pfdev.Options{})
	devMon := pfdev.Attach(nicMon, nil, pfdev.Options{})

	m := monitor.New(devMon)
	m.Keep = *lines
	m.KeepRaw = *writeFile != ""
	m.Ring = *ring
	if *filterExpr != "" {
		prog, _, err := fexpr.Compile(*filterExpr, link)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pfmon:", err)
			os.Exit(1)
		}
		m.Filter = prog
	}
	s.Spawn(mon, "pfmon", func(p *sim.Proc) { m.Run(p, 200*time.Millisecond) })

	// A real Pup echo server/client pair so the trace shows a
	// protocol conversation, not just background noise.
	echoAddr := pup.PortAddr{Net: 1, Host: 2, Socket: 0x123}
	s.Spawn(dst, "echod", func(p *sim.Proc) {
		sock, err := pup.Open(p, devDst, echoAddr, 10)
		if err != nil {
			return
		}
		sock.EchoServer(p, 200*time.Millisecond)
	})
	s.Spawn(src, "echo", func(p *sim.Proc) {
		sock, err := pup.Open(p, devSrc, pup.PortAddr{Net: 1, Host: 1, Socket: 0x77}, 10)
		if err != nil {
			return
		}
		p.Sleep(8 * time.Millisecond)
		for i := 0; i < 3; i++ {
			if rtt, err := sock.Echo(p, echoAddr, []byte("pfmon"), 50*time.Millisecond, 2); err == nil {
				fmt.Printf("echo %d: rtt %.2f mSec\n", i+1,
					float64(rtt)/float64(time.Millisecond))
			}
			p.Sleep(5 * time.Millisecond)
		}
	})

	// Background mixed traffic in the paper's 21/69/10 profile.
	gen := workload.NewGenerator(*seed, link, workload.PaperMix(), []uint32{0x123, 0x200})
	s.Spawn(src, "traffic", func(p *sim.Proc) {
		p.Sleep(10 * time.Millisecond)
		gen.Drive(p, nicSrc, 2, *n, 2*time.Millisecond)
	})

	s.Run(5 * time.Second)

	fmt.Printf("\ntrace (first %d packets):\n", len(m.Records))
	for _, rec := range m.Records {
		fmt.Println(rec)
	}
	fmt.Printf("\n%s", m.Report())

	if *writeFile != "" {
		f, err := os.Create(*writeFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pfmon:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := m.SaveTrace(f); err != nil {
			fmt.Fprintln(os.Stderr, "pfmon:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %d packets to %s\n", m.Stats.Packets, *writeFile)
	}

	if *asJSON {
		raw, err := tr.Snapshot().JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "pfmon:", err)
			os.Exit(1)
		}
		fmt.Printf("\n%s\n", raw)
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pfmon:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := trace.WriteChromeTrace(f, rec.Events); err != nil {
			fmt.Fprintln(os.Stderr, "pfmon:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %d trace events to %s\n", len(rec.Events), *traceFile)
	}
}
