// Pfload drives an already-running pfserve from outside: it opens
// ports and binds socket-demux filters over the control socket,
// injects deterministic traffic as loopback UDP frames, drains the
// ports with concurrent readers, and reconciles every layer's
// counters exactly.  Exit status is nonzero if any counter fails to
// reconcile.
//
//	pfload -ctl host:port -udp host:port [-n packets] [-ports k]
//	       [-seed s] [-profile mix|heavytail] [-link 3mb|10mb] [-json]
//
// The link geometry must match the server's.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/ethersim"
	"repro/internal/live"
)

func main() {
	ctlAddr := flag.String("ctl", "127.0.0.1:7227", "pfserve control-socket address")
	udpAddr := flag.String("udp", "127.0.0.1:7228", "pfserve wire UDP address")
	n := flag.Int("n", 10000, "packets to inject")
	ports := flag.Int("ports", 8, "receiving ports to open")
	seed := flag.Int64("seed", 42, "workload seed")
	profile := flag.String("profile", "mix", "traffic profile: mix or heavytail")
	linkName := flag.String("link", "10mb", "frame geometry: 3mb or 10mb (must match the server)")
	asJSON := flag.Bool("json", false, "emit the report as JSON")
	flag.Parse()

	link := ethersim.Ether3Mb
	if *linkName == "10mb" {
		link = ethersim.Ether10Mb
	} else if *linkName != "3mb" {
		fmt.Fprintln(os.Stderr, "pfload: -link must be 3mb or 10mb")
		os.Exit(2)
	}

	rep, err := live.RunLoad(*ctlAddr, *udpAddr, live.LoadConfig{
		Packets: *n, Ports: *ports, Seed: *seed, Link: link, Profile: *profile,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pfload:", err)
		os.Exit(1)
	}

	if *asJSON {
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "pfload:", err)
			os.Exit(1)
		}
		fmt.Println(string(raw))
	} else {
		fmt.Printf("pfload: sent %d frames in %v (%.0f pkt/s injection, %.0f pkt/s end to end)\n",
			rep.Sent, rep.SendTime.Round(0), rep.SendRate(), rep.Rate())
		fmt.Printf("pfload: %d delivered to readers across %d ports\n", rep.Delivered, *ports)
		if st := rep.Stats; st != nil && st.Spans != nil {
			fmt.Printf("pfload: spans %d created = %d delivered + %d dropped (%d live)\n",
				st.Spans.Created, st.Spans.DeliveredUser, st.Spans.TotalDrops, st.Spans.Live)
		}
	}
	if len(rep.Errors) > 0 {
		for _, e := range rep.Errors {
			fmt.Fprintln(os.Stderr, "pfload: FAIL:", e)
		}
		os.Exit(1)
	}
	fmt.Println("pfload: reconciliation OK")
}
