// Pfserve runs the packet filter live: the identical filter engine,
// resource governor, span tracer and flight recorder that the
// simulator exercises in virtual time, serving real packets on real
// sockets.  Frames arrive as loopback UDP datagrams (one frame per
// datagram, verbatim — the wire stand-in for ethersim's shared
// medium); ports are opened, filters bound, packets read and
// statistics fetched over a JSON-lines TCP control socket.
//
//	pfserve [-ctl addr] [-udp addr] [-link 3mb|10mb]
//	        [-mode checked|fast|compiled|table] [-gov] [-reorder]
//	        [-queues n]
//
// With -selftest N, pfserve instead runs a self-contained load test:
// it starts an instance on ephemeral ports, drives N packets through
// it with the load driver, reconciles every layer's counters exactly,
// prints throughput and per-stage latency, and exits nonzero if any
// counter fails to reconcile.
//
//	pfserve -selftest 10000 [-profile mix|heavytail] [-ports k] [-flows f]
//	        [-seed s] [-json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/ethersim"
	"repro/internal/live"
	"repro/internal/pfdev"
)

func parseLink(name string) (ethersim.LinkType, error) {
	switch name {
	case "3mb":
		return ethersim.Ether3Mb, nil
	case "10mb":
		return ethersim.Ether10Mb, nil
	}
	return 0, fmt.Errorf("-link must be 3mb or 10mb, not %q", name)
}

func parseMode(name string) (pfdev.EvalMode, error) {
	switch name {
	case "checked":
		return pfdev.EvalChecked, nil
	case "fast":
		return pfdev.EvalFast, nil
	case "compiled":
		return pfdev.EvalCompiled, nil
	case "table":
		return pfdev.EvalTable, nil
	}
	return 0, fmt.Errorf("-mode must be checked, fast, compiled or table, not %q", name)
}

func main() {
	ctlAddr := flag.String("ctl", "127.0.0.1:7227", "control-socket TCP address")
	udpAddr := flag.String("udp", "127.0.0.1:7228", "wire UDP address")
	linkName := flag.String("link", "10mb", "frame geometry: 3mb or 10mb")
	modeName := flag.String("mode", "checked", "filter engine: checked, fast, compiled or table")
	gov := flag.Bool("gov", false, "enable the resource governor (default quotas)")
	reorder := flag.Bool("reorder", true, "busy-first scan-order reordering")
	queues := flag.Int("queues", 1, "RSS receive queues (1 = classic single-queue demux)")
	selftest := flag.Int("selftest", 0, "run a self-contained load test with this many packets and exit")
	profile := flag.String("profile", "mix", "selftest traffic: mix (paper §6.1) or heavytail (bounded-Pareto flows)")
	ports := flag.Int("ports", 8, "selftest receiving ports")
	flows := flag.Int("flows", 1, "selftest link-level flows (spread across -queues)")
	seed := flag.Int64("seed", 42, "selftest workload seed")
	asJSON := flag.Bool("json", false, "selftest: emit the report as JSON")
	flag.Parse()

	link, err := parseLink(*linkName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pfserve:", err)
		os.Exit(2)
	}
	mode, err := parseMode(*modeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pfserve:", err)
		os.Exit(2)
	}
	opt := live.Options{Link: link, Mode: mode, Reorder: *reorder, Queues: *queues}
	if *gov {
		opt.Gov = pfdev.DefaultGovConfig()
	}

	if *selftest > 0 {
		runSelftest(opt, *selftest, *ports, *flows, *seed, *profile, link, *asJSON)
		return
	}

	inst, err := live.Start(live.ServeConfig{CtlAddr: *ctlAddr, UDPAddr: *udpAddr, Opt: opt})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pfserve:", err)
		os.Exit(1)
	}
	fmt.Printf("pfserve: control %s, wire %s, link %s, mode %s, gov %v, queues %d\n",
		inst.CtlAddr(), inst.UDPAddr(), *linkName, *modeName, *gov, *queues)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "pfserve: shutting down")
	inst.Close()
}

func runSelftest(opt live.Options, packets, ports, flows int, seed int64, profile string,
	link ethersim.LinkType, asJSON bool) {
	inst, err := live.Start(live.ServeConfig{
		CtlAddr:  "127.0.0.1:0",
		UDPAddr:  "127.0.0.1:0",
		Opt:      opt,
		SpanRing: ringFor(packets),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pfserve: selftest start:", err)
		os.Exit(1)
	}
	defer inst.Close()

	rep, err := live.RunLoad(inst.CtlAddr(), inst.UDPAddr(), live.LoadConfig{
		Packets: packets, Ports: ports, Seed: seed, Link: link, Profile: profile,
		Flows: flows,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pfserve: selftest:", err)
		os.Exit(1)
	}

	if asJSON {
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "pfserve:", err)
			os.Exit(1)
		}
		fmt.Println(string(raw))
	} else {
		printReport(rep, profile)
	}
	if len(rep.Errors) > 0 {
		for _, e := range rep.Errors {
			fmt.Fprintln(os.Stderr, "pfserve: selftest FAIL:", e)
		}
		os.Exit(1)
	}
}

// ringFor sizes the flight recorder so a conservation-proving run
// never evicts a live span.
func ringFor(packets int) int {
	ring := 1 << 15
	for ring < 2*packets {
		ring <<= 1
	}
	return ring
}

func printReport(rep *live.LoadReport, profile string) {
	fmt.Printf("pfserve selftest: profile %s\n", profile)
	fmt.Printf("  sent      %8d frames in %v (%.0f pkt/s injection)\n",
		rep.Sent, rep.SendTime.Round(0), rep.SendRate())
	fmt.Printf("  delivered %8d frames to readers (%.0f pkt/s end to end)\n",
		rep.Delivered, rep.Rate())
	st := rep.Stats
	if st != nil {
		fmt.Printf("  device: %d received, %d kernel drops, %d queued now\n",
			st.Device.Received, st.Device.KernelDrops, st.Device.QueuedNow)
		if st.Spans != nil {
			fmt.Printf("  spans: %d created = %d delivered + %d dropped (%d live)\n",
				st.Spans.Created, st.Spans.DeliveredUser, st.Spans.TotalDrops, st.Spans.Live)
			if len(st.Spans.Drops) > 0 {
				fmt.Println("  drop taxonomy:")
				for name, n := range st.Spans.Drops {
					fmt.Printf("    %-12s %8d\n", name, n)
				}
			}
		}
		if len(st.Stages) > 0 {
			fmt.Println("  per-stage latency:")
			fmt.Printf("    %-8s %8s %12s %12s %12s\n", "stage", "count", "mean", "p50", "p99")
			for _, sl := range st.Stages {
				fmt.Printf("    %-8s %8d %12v %12v %12v\n",
					sl.Stage, sl.Count, sl.Mean, sl.P50, sl.P99)
			}
		}
		if st.Spans != nil && st.Spans.TotalMean > 0 {
			fmt.Printf("    %-8s %8s %12v %12v %12v\n",
				"total", "", st.Spans.TotalMean, st.Spans.TotalP50, st.Spans.TotalP99)
		}
	}
	if len(rep.Errors) == 0 {
		fmt.Println("  reconciliation: OK (all counters account exactly)")
	}
}
