// Pfasm is an assembler, disassembler and test harness for packet
// filter programs.
//
//	pfasm asm [-x] [file]          assemble text to hex words (-x) or
//	                               the binary enfilter layout on stdout
//	pfasm dis [file]               disassemble hex words to text
//	pfasm check [-ext] [file]      validate a program and print its
//	                               static summary
//	pfasm run [-ext] -p HEXPACKET [file]
//	                               apply the program to a packet given
//	                               as hex bytes and report the verdict
//	pfasm expr [-link 3mb|10mb] EXPRESSION
//	                               compile a tcpdump-style expression
//	                               (see internal/fexpr) and disassemble
//	                               the generated program
//
// The program text uses the paper's notation, e.g. figure 3-9:
//
//	PUSHWORD+8  PUSHLIT|CAND 35
//	PUSHWORD+7  PUSHZERO|CAND
//	PUSHWORD+1  PUSHLIT|EQ 2
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/ethersim"
	"repro/internal/fexpr"
	"repro/internal/filter"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "asm":
		fs := flag.NewFlagSet("asm", flag.ExitOnError)
		hexOut := fs.Bool("x", false, "emit hex words instead of binary")
		prio := fs.Uint("prio", 10, "filter priority for binary output")
		fs.Parse(args)
		prog := mustAssemble(readInput(fs.Args()))
		if *hexOut {
			for _, w := range prog {
				fmt.Printf("%04x ", uint16(w))
			}
			fmt.Println()
			return
		}
		out, err := filter.Filter{Priority: uint8(*prio), Program: prog}.MarshalBinary()
		check(err)
		os.Stdout.Write(out)

	case "dis":
		fs := flag.NewFlagSet("dis", flag.ExitOnError)
		fs.Parse(args)
		prog := parseHexWords(readInput(fs.Args()))
		fmt.Print(prog.String())

	case "check":
		fs := flag.NewFlagSet("check", flag.ExitOnError)
		ext := fs.Bool("ext", false, "allow extended instructions")
		fs.Parse(args)
		prog := mustAssemble(readInput(fs.Args()))
		info, err := filter.Validate(prog, filter.ValidateOptions{Extensions: *ext})
		check(err)
		fmt.Printf("ok: %d instructions, max stack %d, max word %d",
			info.Instrs, info.MaxStack, info.MaxWord)
		if info.UsesIndirect {
			fmt.Print(", uses indirection")
		}
		fmt.Println()

	case "run":
		fs := flag.NewFlagSet("run", flag.ExitOnError)
		ext := fs.Bool("ext", false, "allow extended instructions")
		pktHex := fs.String("p", "", "packet as hex bytes")
		hdrWords := fs.Int("hdr", 2, "data-link header length in words (for PUSHHDRLEN)")
		fs.Parse(args)
		if *pktHex == "" {
			fmt.Fprintln(os.Stderr, "pfasm run: -p HEXPACKET required")
			os.Exit(2)
		}
		pkt, err := hex.DecodeString(strings.ReplaceAll(*pktHex, " ", ""))
		check(err)
		prog := mustAssemble(readInput(fs.Args()))
		var res filter.Result
		if *ext {
			res = filter.RunExt(prog, pkt, filter.Env{HeaderWords: *hdrWords})
		} else {
			res = filter.Run(prog, pkt)
		}
		fmt.Printf("accept=%v instructions=%d", res.Accept, res.Instrs)
		if res.Err != nil {
			fmt.Printf(" error=%v", res.Err)
		}
		fmt.Println()
		if !res.Accept {
			os.Exit(1)
		}

	case "expr":
		fs := flag.NewFlagSet("expr", flag.ExitOnError)
		linkName := fs.String("link", "3mb", "target link: 3mb or 10mb")
		fs.Parse(args)
		link := ethersim.Ether3Mb
		if *linkName == "10mb" {
			link = ethersim.Ether10Mb
		}
		src := strings.Join(fs.Args(), " ")
		if src == "" {
			src = readInput(nil)
		}
		prog, ext, err := fexpr.Compile(src, link)
		check(err)
		if ext {
			fmt.Println("# requires pfdev.Options{Extensions: true}")
		}
		fmt.Print(prog.String())

	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: pfasm {asm|dis|check|run|expr} [flags] [file]")
	os.Exit(2)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pfasm:", err)
		os.Exit(1)
	}
}

func readInput(args []string) string {
	if len(args) > 0 && args[0] != "-" {
		data, err := os.ReadFile(args[0])
		check(err)
		return string(data)
	}
	data, err := io.ReadAll(os.Stdin)
	check(err)
	return string(data)
}

func mustAssemble(src string) filter.Program {
	prog, err := filter.Assemble(src)
	check(err)
	return prog
}

func parseHexWords(src string) filter.Program {
	var prog filter.Program
	for _, tok := range strings.Fields(src) {
		var w uint16
		_, err := fmt.Sscanf(tok, "%x", &w)
		check(err)
		prog = append(prog, filter.Word(w))
	}
	return prog
}
